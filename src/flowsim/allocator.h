// Tiered weighted max-min rate allocation.
//
// All six schedulers in the reproduction share one allocation mechanism:
//
//   1. Active flows are grouped by `tier` (ascending). Tier t is allocated
//      only the capacity tiers < t left unused — this is strict priority
//      queuing (SPQ), the enforcement primitive the paper relies on, and
//      also expresses Baraat's FIFO-LM (tier = batch serial) and Aalo's
//      priority queues.
//   2. Within one tier, rates follow *weighted max-min fairness* computed by
//      progressive filling (water-filling): repeatedly find the bottleneck
//      link (smallest residual capacity per unit weight), freeze its flows
//      at their fair share, and continue. Weight 1 everywhere reproduces
//      per-flow fair sharing (the PFS baseline / TCP approximation); the
//      WRR starvation-mitigation mode maps queue weights onto flow weights.
//
// The result is work-conserving: no link with an unfrozen flow is left with
// spare capacity.
//
// Two implementations share one convergence kernel (solve_component):
//
//   * allocate_rates — the *oracle*: re-solves every link-connected
//     component of the whole active set from scratch. Simple, obviously
//     correct, and the reference the incremental allocator is held
//     byte-identical to (DESIGN.md §13).
//   * RateAllocator — the *incremental* allocator the engine uses by
//     default: event hooks (flow add/remove, link capacity change, priority
//     change) seed a dirty-link frontier; allocate() closes the frontier
//     over shared-bottleneck dependencies and re-solves only the affected
//     components. Unaffected flows keep their cached rates, which purity
//     (rates are a function of (component flows, tiers, weights, caps)
//     only) guarantees are the bits a full re-solve would produce.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "flowsim/state.h"
#include "obs/profiler.h"
#include "topology/graph.h"

namespace gurita {

/// One flow whose allocated rate differs (bitwise) from the rate it carried
/// going into the recomputation, together with that previous rate. The old
/// rate is what the engine needs to settle the flow's lazy byte drain over
/// the interval the flow actually transmitted at it.
struct RateChange {
  SimFlow* flow = nullptr;
  Rate old_rate = 0;
};

/// Which allocator implementation the engine drives (Simulator::Config).
enum class AllocatorKind : std::uint8_t {
  kIncremental = 0,  ///< dirty-link frontier + cached component rates
  kOracle = 1,       ///< full from-scratch re-solve every recomputation
};

[[nodiscard]] const char* to_string(AllocatorKind kind);

/// Process-wide default: the GURITA_ALLOCATOR environment variable (falling
/// back to ALLOCATOR) set to "oracle" selects AllocatorKind::kOracle; any
/// other value — including unset — selects the incremental allocator. Read
/// once and cached, so every Simulator::Config in the process agrees.
[[nodiscard]] AllocatorKind default_allocator_kind();

/// Work counters for one run's allocations. Diagnostic only: they are not
/// part of the determinism contract (a restored run re-solves everything on
/// its first allocation, so its counters differ from the uninterrupted
/// run's even though every simulation byte matches) and therefore live
/// outside SimResults, like the phase profiler.
struct AllocStats {
  std::uint64_t allocations = 0;       ///< allocate() calls
  std::uint64_t flows_solved = 0;      ///< flows passed through the kernel
  std::uint64_t components_solved = 0; ///< components re-converged
  std::uint64_t dirty_links = 0;       ///< frontier size after closure
  /// Distribution of re-converged component sizes (flows per
  /// solve_component call), log2-bucketed. Like the counters above this is
  /// diagnostic only — it surfaces through the --diagnostics export, never
  /// through fingerprinted registries.
  LogHistogram component_flows{2.0};

  /// Sums another run's counters and component-size distribution in (the
  /// diagnostics pooling ComparisonResult::absorb performs).
  void merge(const AllocStats& other) {
    allocations += other.allocations;
    flows_solved += other.flows_solved;
    components_solved += other.components_solved;
    dirty_links += other.dirty_links;
    component_flows.merge(other.component_flows);
  }
};

/// Reusable scratch for the water-filling kernel: per-link accumulators
/// (sized to the topology, reset via touched-link lists so a solve costs
/// O(component), not O(links)) plus the CSR flow-list arrays that replace
/// the old per-link node containers.
struct WaterfillScratch {
  std::vector<double> link_weight;         ///< sum of unfrozen weights
  std::vector<std::uint32_t> link_unfrozen;///< count of unfrozen flows
  std::vector<std::uint32_t> link_nflows;  ///< CSR: flows crossing the link
  std::vector<std::uint32_t> link_off;     ///< CSR: slice start in `csr`
  std::vector<std::uint32_t> link_cur;     ///< CSR: fill cursor
  std::vector<std::uint32_t> csr;          ///< flow indices, link-major
  std::vector<LinkId> touched;             ///< links used by this group
  std::vector<char> frozen;                ///< per-flow freeze bit
  std::vector<Rate> residual;              ///< per-link residual capacity
  std::vector<char> residual_init;         ///< residual[l] is initialized
  std::vector<LinkId> residual_links;      ///< links with residual_init set

  /// Sizes the per-link arrays for `links`; values are maintained by the
  /// kernel's touched-list resets, so this is cheap after the first call.
  void ensure(std::size_t links);

  /// Reserved bytes across all scratch arrays (obs/memory.h accounting).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Solves one link-connected component: `flows[0..n)` sorted by (tier, id),
/// tier groups filled in order with each group consuming the residual the
/// previous groups left (SPQ). Residual capacity starts at `capacities` for
/// every link the component touches. Writes flow rates.
void solve_component(const Topology& topo, SimFlow* const* flows,
                     std::size_t n, const std::vector<Rate>& capacities,
                     WaterfillScratch& scratch);

/// Computes and writes `rate` for every flow in `flows` (all must be
/// active, with non-empty paths). Rates of flows not in `flows` are not
/// touched; the order of `flows` is preserved. `capacities` overrides the
/// links' nominal capacities (indexed by LinkId value; entries may be 0 for
/// a failed link) — the engine uses this for failure injection.
///
/// When `changed` is non-null it is cleared and filled (in `flows` order)
/// with the flows whose rate actually moved. Identical inputs produce
/// bit-identical rates, so an event that does not disturb the allocation
/// reports no changes — the hook the event-calendar engine uses to touch
/// only flows whose projected finish time shifted.
///
/// This is the oracle: link-connected components are split out and each is
/// solved independently by the shared kernel, so its bits are — by
/// construction — the ones RateAllocator's partial re-solves produce.
void allocate_rates(const Topology& topo, const std::vector<Rate>& capacities,
                    const std::vector<SimFlow*>& flows,
                    std::vector<RateChange>* changed = nullptr,
                    AllocStats* stats = nullptr);

/// Convenience overload using the topology's nominal capacities.
void allocate_rates(const Topology& topo, const std::vector<SimFlow*>& flows);

/// Weighted max-min within a single group, honoring `residual` capacities
/// (indexed by LinkId value). Consumes capacity from `residual` and writes
/// flow rates. Exposed separately for unit testing.
void waterfill(const Topology& topo, std::vector<SimFlow*>& group,
               std::vector<Rate>& residual);

/// Incremental water-filling allocator (DESIGN.md §13).
///
/// The engine notifies it of every event that can change an allocation:
/// flow arrival/finish/abort (add_flow/remove_flow), link capacity changes
/// (dirty_link) and direct rate caps (touch_flow); scheduler priority
/// rewrites are caught by allocate()'s tier/weight mirror scan. allocate()
/// then closes the dirty-link frontier over the link <-> flow adjacency
/// (flat SoA membership lists), re-solves only the affected components with
/// the shared kernel, and reports exactly the flows whose rate moved — in
/// active-list order, bitwise identical to what the oracle would report.
///
/// In AllocatorKind::kOracle mode every hook is a no-op and allocate()
/// delegates to allocate_rates(), which is what makes the two engines
/// differentially comparable at zero risk of shared state.
///
/// The class owns no simulation state that cannot be rebuilt: a restored
/// simulator calls rebuild(active) and the first allocation re-solves
/// everything (purity makes that byte-identical to the uninterrupted run),
/// so snapshots need not serialize any of this.
class RateAllocator {
 public:
  RateAllocator() = default;
  RateAllocator(RateAllocator&&) = default;
  RateAllocator& operator=(RateAllocator&&) = default;
  RateAllocator(const RateAllocator&) = delete;
  RateAllocator& operator=(const RateAllocator&) = delete;

  /// (Re-)initializes for a run: sizes per-link arrays, clears membership
  /// and the frontier, reserves per-flow arrays for `flow_capacity` ids.
  /// Reuses existing vector capacity, so pooled reuse allocates nothing.
  void reset(const Topology* topo, AllocatorKind kind,
             std::size_t flow_capacity);

  [[nodiscard]] AllocatorKind kind() const { return kind_; }
  [[nodiscard]] const AllocStats& stats() const { return stats_; }

  /// Reserved bytes of the membership lists, per-flow arrays, worklists and
  /// kernel scratch — the allocator's real footprint for the memory
  /// accountant (obs/memory.h). Diagnostic only.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Flow entered the active set: links into every path link's membership
  /// list (O(path)) and dirties those links. Entry slots are assigned once
  /// per flow id and reused on retry re-entry (the path is stable).
  void add_flow(SimFlow* flow);
  /// Flow left the active set (finish/abort/cancel): unlinks and dirties.
  void remove_flow(SimFlow* flow);
  /// The flow's stored rate was changed outside the allocator (straggler
  /// caps) or differs from its pure allocation (TCP ramp / straggler
  /// windows): dirty its links so the next allocate() re-reports it.
  void touch_flow(SimFlow* flow);
  /// The link's capacity changed (disruption, link fault): seed the
  /// frontier with it.
  void dirty_link(LinkId link);

  /// Recomputes rates. Incremental mode: mirror-scans `active` for
  /// tier/weight changes, closes the dirty frontier, re-solves affected
  /// components, and fills `changed` (cleared first) with the flows whose
  /// rate moved, in `active` order — the same list allocate_rates() would
  /// produce. Oracle mode: delegates to allocate_rates(). `profiler` (may
  /// be null) receives the kAllocFrontier / kAllocConverge sub-phases.
  void allocate(const std::vector<Rate>& capacities,
                const std::vector<SimFlow*>& active,
                std::vector<RateChange>* changed,
                obs::PhaseProfiler* profiler);

  /// Rebuilds membership from scratch after a snapshot restore: re-adds
  /// every active flow, leaving all their links dirty, so the next
  /// allocate() re-solves the full active set. Purity makes the result —
  /// and the reported changes — byte-identical to the uninterrupted run's.
  void rebuild(const std::vector<SimFlow*>& active);

 private:
  static constexpr std::int32_t kNil = -1;

  /// Grows the per-flow-id arrays to cover `fid`.
  void ensure_flow(std::size_t fid);

  const Topology* topo_ = nullptr;
  AllocatorKind kind_ = AllocatorKind::kIncremental;
  AllocStats stats_;

  // --- flat SoA membership: per link an intrusive doubly-linked list of
  // entries, one entry per (flow, path link). A flow's entries occupy the
  // contiguous slot range [slot_offset_[fid], slot_offset_[fid] + path
  // length), assigned at first add and reused on retry re-entry.
  std::vector<std::int32_t> head_;       ///< per link: first entry or kNil
  std::vector<SimFlow*> ent_flow_;       ///< entry -> flow
  std::vector<std::int32_t> ent_next_;   ///< entry -> next on same link
  std::vector<std::int32_t> ent_prev_;   ///< entry -> previous on same link

  // --- per-flow-id state (grown on demand) ---
  std::vector<std::int32_t> slot_offset_;///< first entry slot, kNil if none
  std::vector<char> in_;                 ///< currently a member
  std::vector<Tier> tier_mirror_;        ///< tier at last allocation
  std::vector<double> weight_mirror_;    ///< weight at last allocation
  std::vector<Rate> old_rate_;           ///< rate when marked affected
  std::vector<std::uint8_t> flow_mark_;  ///< 0 clean / 1 affected / 2 claimed

  // --- dirty frontier + per-allocation worklists ---
  std::vector<char> link_dirty_;         ///< link is in dirty_list_
  std::vector<LinkId> dirty_list_;
  std::vector<SimFlow*> affected_;       ///< closure of the frontier
  std::vector<SimFlow*> component_;      ///< one component, sorted (tier,id)
  std::vector<char> link_claimed_;       ///< link visited by component BFS
  std::vector<LinkId> claimed_links_;

  WaterfillScratch scratch_;
};

}  // namespace gurita
