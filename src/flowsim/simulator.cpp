#include "flowsim/simulator.h"
#include <sstream>

#include <algorithm>
#include <cmath>

#include "flowsim/allocator.h"

namespace gurita {

double SimResults::average_jct() const {
  if (jobs.empty()) return 0.0;
  double s = 0;
  for (const JobResult& j : jobs) s += j.jct();
  return s / static_cast<double>(jobs.size());
}

double SimResults::average_cct() const {
  if (coflows.empty()) return 0.0;
  double s = 0;
  for (const CoflowResult& c : coflows) s += c.cct();
  return s / static_cast<double>(coflows.size());
}

void SimResults::merge_counters(const SimResults& other) {
  makespan = std::max(makespan, other.makespan);
  rate_recomputations += other.rate_recomputations;
  events += other.events;
  flow_touches += other.flow_touches;
  legacy_flow_touches += other.legacy_flow_touches;
}

void SimResults::export_counters(obs::Registry& registry) const {
  registry.add("engine.events", events);
  registry.add("engine.flow_touches", flow_touches);
  registry.add("engine.legacy_flow_touches", legacy_flow_touches);
  registry.add("engine.rate_recomputations", rate_recomputations);
  registry.set_gauge("engine.makespan", makespan);
}

double SimResults::link_utilization(LinkId id, Rate capacity) const {
  GURITA_CHECK_MSG(id.value() < link_bytes.size(),
                   "link stats not collected or id out of range");
  GURITA_CHECK_MSG(capacity > 0, "capacity must be positive");
  if (makespan <= 0) return 0.0;
  return link_bytes[id.value()] / (capacity * makespan);
}

Simulator::Simulator(const Fabric& fabric, Scheduler& scheduler,
                     Config config)
    : fabric_(&fabric), scheduler_(&scheduler), config_(std::move(config)) {
  capacities_.resize(fabric.topology().link_count());
  for (std::size_t i = 0; i < capacities_.size(); ++i)
    capacities_[i] = fabric.topology().link(LinkId{i}).capacity;
  for (const CapacityChange& change : config_.disruptions) {
    GURITA_CHECK_MSG(change.link.value() < capacities_.size(),
                     "disruption targets an unknown link");
    GURITA_CHECK_MSG(change.new_capacity >= 0, "negative capacity");
    GURITA_CHECK_MSG(change.time >= 0, "disruption before time zero");
  }
}

JobId Simulator::submit(const JobSpec& spec) {
  GURITA_CHECK_MSG(!ran_, "submit after run()");
  validate(spec, fabric_->num_hosts());

  const JobId jid{state_.jobs_.size()};
  SimJob job;
  job.id = jid;
  job.spec = spec;
  job.arrival_time = spec.arrival_time;
  job.stage_of = stages_of(spec);
  job.num_stages = 0;
  for (int s : job.stage_of) job.num_stages = std::max(job.num_stages, s);
  job.coflows_remaining = static_cast<int>(spec.coflows.size());
  job.total_bytes = spec.total_bytes();

  for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
    const CoflowId cid{state_.coflows_.size()};
    SimCoflow c;
    c.id = cid;
    c.job = jid;
    c.index = static_cast<int>(i);
    c.stage = job.stage_of[i];
    c.deps_remaining = static_cast<int>(spec.deps[i].size());
    state_.coflows_.push_back(std::move(c));
    state_.aggregates_.emplace_back();
    job.coflows.push_back(cid);
  }
  state_.jobs_.push_back(std::move(job));
  return jid;
}

SimState::CoflowAggregate& Simulator::aggregate_of(const SimFlow& flow) {
  const CoflowId cid =
      state_.jobs_[flow.job.value()].coflows[flow.coflow_index];
  return state_.aggregates_[cid.value()];
}

void Simulator::settle(SimFlow& flow) {
  const Time elapsed = now_ - flow.last_touched;
  if (elapsed > 0 && flow.rate > 0) {
    if (config_.collect_link_stats) {
      for (LinkId l : flow.path)
        live_results_->link_bytes[l.value()] += flow.rate * elapsed;
    }
    const Bytes after = std::max(0.0, flow.remaining - flow.rate * elapsed);
    SimState::CoflowAggregate& agg = aggregate_of(flow);
    agg.base_bytes += flow.remaining - after;
    // The flow's rate·last_touched contribution moves to rate·now_, so the
    // aggregate's linear form keeps reporting the same bytes_sent(now_).
    agg.rate_time_sum += flow.rate * elapsed;
    flow.remaining = after;
  }
  flow.last_touched = now_;
}

void Simulator::set_rate(SimFlow& flow, Rate new_rate) {
  // Requires a settled flow (last_touched == now_), so the old rate's
  // drain has already been folded into the aggregate.
  SimState::CoflowAggregate& agg = aggregate_of(flow);
  agg.rate_sum += new_rate - flow.rate;
  agg.rate_time_sum += (new_rate - flow.rate) * now_;
  flow.rate = new_rate;
}

void Simulator::push_key(SimFlow& flow) {
  const std::uint32_t gen = ++gen_[flow.id.value()];
  if (flow.remaining <= kByteEpsilon) {
    // Already drained (zero-size flows, epsilon residue): due immediately.
    calendar_.push(CalendarEntry{now_, gen, flow.id});
  } else if (flow.rate > 0) {
    calendar_.push(
        CalendarEntry{now_ + flow.remaining / flow.rate, gen, flow.id});
  }
  // rate == 0 with real bytes left: no projected finish. The flow re-enters
  // the calendar when a recomputation next gives it a rate; if nothing ever
  // does (e.g. a dead link), the engine's stall guard fires as before.
}

void Simulator::remove_from_active(SimFlow& flow) {
  const std::uint32_t pos = pos_in_active_[flow.id.value()];
  SimFlow* last = active_.back();
  active_[pos] = last;
  pos_in_active_[last->id.value()] = pos;
  active_.pop_back();
}

void Simulator::release_coflow(SimCoflow& coflow) {
  obs::ScopedPhase phase(config_.profiler, obs::Phase::kDagRelease);
  GURITA_CHECK_MSG(!coflow.released(), "double release");
  const SimJob& job = state_.jobs_[coflow.job.value()];
  const CoflowSpec& spec = job.spec.coflows[coflow.index];

  coflow.release_time = now_;
  coflow.flows_remaining = static_cast<int>(spec.flows.size());
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kCoflowRelease)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kCoflowRelease;
    r.time = now_;
    r.job = coflow.job.value();
    r.coflow = coflow.id.value();
    r.i0 = coflow.stage;
    r.i1 = static_cast<std::int32_t>(spec.flows.size());
    tr->emit(r);
  }
  SimState::CoflowAggregate& agg = state_.aggregates_[coflow.id.value()];
  for (const FlowSpec& fs : spec.flows) {
    GURITA_CHECK_MSG(state_.flows_.size() < state_.flows_.capacity(),
                     "flow store would reallocate under the active list");
    const FlowId fid{state_.flows_.size()};
    SimFlow f;
    f.id = fid;
    f.job = coflow.job;
    f.coflow_index = coflow.index;
    f.src_host = fs.src_host;
    f.dst_host = fs.dst_host;
    f.size = fs.size;
    f.remaining = fs.size;
    f.start_time = now_;
    f.last_touched = now_;
    f.path = fabric_->route(fid, fs.src_host, fs.dst_host);
    state_.flows_.push_back(std::move(f));
    coflow.flows.push_back(fid);

    SimFlow& stored = state_.flows_.back();
    pos_in_active_.push_back(static_cast<std::uint32_t>(active_.size()));
    gen_.push_back(0);
    active_.push_back(&stored);
    ++agg.open_connections;
    push_key(stored);
    ++live_results_->flow_touches;
    if (tr && tr->wants(obs::TraceEventKind::kFlowRelease)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kFlowRelease;
      r.time = now_;
      r.job = coflow.job.value();
      r.coflow = coflow.id.value();
      r.flow = fid.value();
      r.i0 = fs.src_host;
      r.i1 = fs.dst_host;
      r.v0 = fs.size;
      tr->emit(r);
    }
  }
  scheduler_->on_coflow_release(coflow, now_);
}

void Simulator::finish_coflow(SimCoflow& coflow) {
  coflow.finish_time = now_;
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kCoflowFinish)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kCoflowFinish;
    r.time = now_;
    r.job = coflow.job.value();
    r.coflow = coflow.id.value();
    r.i0 = coflow.stage;
    r.v0 = coflow.release_time;
    tr->emit(r);
  }
  scheduler_->on_coflow_finish(coflow, now_);

  SimJob& job = state_.jobs_[coflow.job.value()];
  --job.coflows_remaining;
  const int prev_stages = job.completed_stages;

  // Release dependents whose dependencies are now all complete.
  const JobSpec& spec = job.spec;
  for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
    SimCoflow& cand = state_.coflows_[job.coflows[i].value()];
    if (cand.released()) continue;
    bool depends = false;
    for (int d : spec.deps[i]) {
      if (d == coflow.index) {
        depends = true;
        break;
      }
    }
    if (!depends) continue;
    if (--cand.deps_remaining == 0) release_coflow(cand);
  }

  if (job.coflows_remaining == 0) {
    job.finish_time = now_;
    job.completed_stages = job.num_stages;
    scheduler_->on_job_finish(job, now_);
  } else {
    // Update completed stages by scanning (jobs are small DAGs; this is
    // O(coflows) on coflow completion only).
    int k = job.num_stages;
    for (std::size_t i = 0; i < job.coflows.size(); ++i) {
      const SimCoflow& c = state_.coflows_[job.coflows[i].value()];
      if (!c.finished()) k = std::min(k, job.stage_of[i] - 1);
    }
    job.completed_stages = k;
  }
  if (tr != nullptr) {
    if (job.completed_stages > prev_stages &&
        tr->wants(obs::TraceEventKind::kStageComplete)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kStageComplete;
      r.time = now_;
      r.job = job.id.value();
      r.i0 = job.completed_stages;
      tr->emit(r);
    }
    if (job.finished() && tr->wants(obs::TraceEventKind::kJobFinish)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kJobFinish;
      r.time = now_;
      r.job = job.id.value();
      r.v0 = job.arrival_time;
      tr->emit(r);
    }
  }
}

void Simulator::finish_flow(SimFlow& flow) {
  settle(flow);
  set_rate(flow, 0.0);
  SimState::CoflowAggregate& agg = aggregate_of(flow);
  // The negligible residual (completion predicate) counts as delivered, so
  // a finished flow reports bytes_sent() == size, as before.
  agg.base_bytes += flow.remaining;
  flow.remaining = 0;
  agg.ell_max_settled = std::max(agg.ell_max_settled, flow.size);
  --agg.open_connections;
  ++gen_[flow.id.value()];  // invalidate any pending calendar entry
  remove_from_active(flow);
  flow.finish_time = now_;
  ++live_results_->flow_touches;
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kFlowFinish)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kFlowFinish;
    r.time = now_;
    r.job = flow.job.value();
    r.coflow =
        state_.jobs_[flow.job.value()].coflows[flow.coflow_index].value();
    r.flow = flow.id.value();
    r.v0 = flow.size;
    tr->emit(r);
  }

  SimCoflow& coflow =
      state_.coflows_[state_.jobs_[flow.job.value()].coflows[flow.coflow_index].value()];
  --coflow.flows_remaining;
  scheduler_->on_flow_finish(flow, now_);
  if (coflow.flows_remaining == 0) finish_coflow(coflow);
}

void Simulator::arrive_job(SimJob& job) {
  if (config_.trace &&
      config_.trace->wants(obs::TraceEventKind::kJobArrival)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kJobArrival;
    r.time = now_;
    r.job = job.id.value();
    r.i0 = job.num_stages;
    config_.trace->emit(r);
  }
  scheduler_->on_job_arrival(job, now_);
  for (std::size_t i = 0; i < job.coflows.size(); ++i) {
    SimCoflow& c = state_.coflows_[job.coflows[i].value()];
    if (c.deps_remaining == 0) release_coflow(c);
  }
}

SimResults Simulator::run() {
  GURITA_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  obs::PhaseProfiler* prof = config_.profiler;
  if (prof != nullptr) prof->begin_run();
  const int setup_prev =
      prof != nullptr ? prof->enter(obs::Phase::kSetup) : -1;
  // Hand the recorder to the scheduler so its decision records (queue
  // transitions, WRR weights) interleave with engine records in emission
  // order. Only wired when tracing is on, so a scheduler driven by another
  // engine (the differential oracle) can be given a recorder directly.
  if (config_.trace != nullptr)
    scheduler_->set_trace_recorder(config_.trace);
  scheduler_->attach(state_);

  // active_ holds raw pointers into flows_; reserve the backing store up
  // front so it never reallocates mid-run.
  std::size_t total_flows = 0;
  for (const SimJob& j : state_.jobs_)
    for (const CoflowSpec& c : j.spec.coflows) total_flows += c.flows.size();
  state_.flows_.reserve(total_flows);
  pos_in_active_.reserve(total_flows);
  gen_.reserve(total_flows);

  std::vector<JobId> arrival_order;
  arrival_order.reserve(state_.jobs_.size());
  for (const SimJob& j : state_.jobs_) arrival_order.push_back(j.id);
  std::sort(arrival_order.begin(), arrival_order.end(),
            [this](JobId a, JobId b) {
              const Time ta = state_.jobs_[a.value()].arrival_time;
              const Time tb = state_.jobs_[b.value()].arrival_time;
              if (ta != tb) return ta < tb;
              return a < b;
            });

  std::size_t next_arrival = 0;
  const Time tick = scheduler_->tick_interval();
  GURITA_CHECK_MSG(tick >= 0, "negative tick interval");
  Time next_tick = std::numeric_limits<Time>::infinity();
  bool dirty = true;
  SimResults results;
  live_results_ = &results;
  if (config_.collect_link_stats)
    results.link_bytes.assign(fabric_->topology().link_count(), 0.0);

  // Failure injection: apply capacity changes in time order.
  std::vector<CapacityChange> disruptions = config_.disruptions;
  std::sort(disruptions.begin(), disruptions.end(),
            [](const CapacityChange& a, const CapacityChange& b) {
              return a.time < b.time;
            });
  std::size_t next_disruption = 0;
  const auto apply_due_disruptions = [&] {
    while (next_disruption < disruptions.size() &&
           disruptions[next_disruption].time <= now_ + kTimeEpsilon) {
      const CapacityChange& change = disruptions[next_disruption++];
      capacities_[change.link.value()] = change.new_capacity;
      if (config_.trace &&
          config_.trace->wants(obs::TraceEventKind::kCapacityChange)) {
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kCapacityChange;
        r.time = now_;
        r.i0 = static_cast<std::int32_t>(change.link.value());
        r.v0 = change.new_capacity;
        config_.trace->emit(r);
      }
      dirty = true;
    }
  };

  std::vector<FlowId> done;
  std::uint64_t iterations = 0;
  if (prof != nullptr) prof->leave(setup_prev);

  while (next_arrival < arrival_order.size() || !active_.empty()) {
    if (++iterations > config_.max_iterations) {
      std::ostringstream os;
      os << "simulation live-lock guard tripped: now=" << now_
         << " active_flows=" << active_.size()
         << " pending_arrivals=" << (arrival_order.size() - next_arrival)
         << " recomputations=" << results.rate_recomputations;
      throw std::logic_error(os.str());
    }
    ++results.events;
    if (active_.empty()) {
      obs::ScopedPhase arrival_phase(prof, obs::Phase::kArrival);
      // Idle network: jump straight to the next arrival.
      SimJob& job = state_.jobs_[arrival_order[next_arrival].value()];
      now_ = std::max(now_, job.arrival_time);
      state_.now_ = now_;
      ++next_arrival;
      arrive_job(job);
      // Coalesce simultaneous arrivals.
      while (next_arrival < arrival_order.size()) {
        SimJob& j = state_.jobs_[arrival_order[next_arrival].value()];
        if (j.arrival_time > now_ + kTimeEpsilon) break;
        ++next_arrival;
        arrive_job(j);
      }
      if (tick > 0) next_tick = now_ + tick;
      apply_due_disruptions();
      dirty = true;
      continue;
    }

    const bool was_dirty = dirty;
    bool any_ramp_capped = false;
    if (dirty) {
      {
        obs::ScopedPhase assign_phase(prof, obs::Phase::kSchedulerAssign);
        scheduler_->assign(now_, active_);
      }
      obs::ScopedPhase alloc_phase(prof, obs::Phase::kAllocator);
      allocate_rates(fabric_->topology(), capacities_, active_, &rate_changes_);
      ++results.rate_recomputations;
      // Only flows whose rate actually moved need settling and a new
      // calendar entry; everything else keeps draining on its old line.
      for (const RateChange& rc : rate_changes_) {
        SimFlow& f = *rc.flow;
        Rate target = f.rate;  // the allocator's output
        f.rate = rc.old_rate;  // restore: the flow drained at the old rate
        settle(f);
        // TCP slow-start ramp: cap the flow at its window-growth rate. A
        // capped flow's allowance grows as it sends, so while any flow is
        // capped the engine refreshes rates at ramp-time granularity. A
        // flow whose allocation did not change cannot become newly capped:
        // the cap is non-decreasing in bytes sent, and its current rate
        // already satisfied the older, smaller cap.
        if (config_.tcp_ramp_time > 0) {
          const Rate cap = (config_.tcp_initial_window + f.bytes_sent()) /
                           config_.tcp_ramp_time;
          if (target > cap) {
            target = cap;
            any_ramp_capped = true;
          }
        }
        set_rate(f, target);
        push_key(f);
        ++results.flow_touches;
        if (config_.trace &&
            config_.trace->wants(obs::TraceEventKind::kFlowRateChange)) {
          obs::TraceRecord r;
          r.kind = obs::TraceEventKind::kFlowRateChange;
          r.time = now_;
          r.job = f.job.value();
          r.coflow =
              state_.jobs_[f.job.value()].coflows[f.coflow_index].value();
          r.flow = f.id.value();
          r.v0 = rc.old_rate;
          r.v1 = target;
          config_.trace->emit(r);
        }
      }
      dirty = false;
    }

    const int drain_prev =
        prof != nullptr ? prof->enter(obs::Phase::kCalendarDrain) : -1;
    // Next completion: discard stale calendar tops (their flow's rate
    // changed since the entry was pushed, or the flow already finished),
    // then the top key is the earliest projected finish.
    while (!calendar_.empty() &&
           calendar_.top().gen != gen_[calendar_.top().flow.value()]) {
      calendar_.pop();
      ++results.flow_touches;
    }
    const Time t_complete = calendar_.empty()
                                ? std::numeric_limits<Time>::infinity()
                                : calendar_.top().key;
    const Time t_arrival =
        next_arrival < arrival_order.size()
            ? state_.jobs_[arrival_order[next_arrival].value()].arrival_time
            : std::numeric_limits<Time>::infinity();
    const Time t_tick = tick > 0 ? next_tick : std::numeric_limits<Time>::infinity();
    const Time t_disruption = next_disruption < disruptions.size()
                                  ? disruptions[next_disruption].time
                                  : std::numeric_limits<Time>::infinity();

    Time t_next = std::min({t_complete, t_arrival, t_tick, t_disruption});
    if (any_ramp_capped) {
      // Refresh while ramping so capped flows pick up their grown windows.
      t_next = std::min(t_next, now_ + config_.tcp_ramp_time);
      dirty = true;
    }
    GURITA_CHECK_MSG(std::isfinite(t_next),
                     "simulation stalled: active flows but no next event");
    GURITA_CHECK_MSG(t_next <= config_.max_time, "simulation exceeded max_time");
    t_next = std::max(t_next, now_);

    // What the pre-calendar engine would have scanned on this event: the
    // completion-time min search and the completion check always, the byte
    // drain when time advances, the ramp pass when enabled, and the
    // rebuild/assign pass when dirty — each a full active-set walk.
    std::uint64_t legacy_scans = 2;
    if (was_dirty) ++legacy_scans;
    if (config_.tcp_ramp_time > 0) ++legacy_scans;
    if (t_next > now_) ++legacy_scans;
    results.legacy_flow_touches += legacy_scans * active_.size();

    // No per-flow drain sweep: every flow keeps draining linearly from its
    // (last_touched, rate) settle point; advancing the clock is O(1).
    now_ = t_next;
    state_.now_ = now_;
    apply_due_disruptions();

    // Completions (deterministic order: ascending flow id). A flow is done
    // when its residual bytes are negligible OR its residual transfer time
    // falls below the clock's floating-point resolution at `now_` — without
    // the second clause a nearly-drained flow whose remaining/rate is
    // smaller than one ulp of now_ would stall the clock forever. Calendar
    // keys are projected zero-drain times, so due entries form a prefix of
    // the heap order and the pop loop stops at the first entry still in the
    // future.
    const Time quantum = std::max(1.0, now_) * 1e-12;
    done.clear();
    while (!calendar_.empty()) {
      const CalendarEntry top = calendar_.top();
      if (top.gen != gen_[top.flow.value()]) {
        calendar_.pop();
        ++results.flow_touches;
        continue;
      }
      const SimFlow& f = state_.flows_[top.flow.value()];
      const Bytes rem = f.remaining_at(now_);
      if (!(rem <= kByteEpsilon || rem <= f.rate * quantum)) break;
      calendar_.pop();
      ++results.flow_touches;
      done.push_back(top.flow);
    }
    if (prof != nullptr) prof->leave(drain_prev);
    if (!done.empty()) {
      obs::ScopedPhase completion_phase(prof, obs::Phase::kCompletion);
      std::sort(done.begin(), done.end());
      for (FlowId id : done) finish_flow(state_.flows_[id.value()]);
      dirty = true;
    }

    // Arrivals due now.
    if (next_arrival < arrival_order.size()) {
      obs::ScopedPhase arrival_phase(prof, obs::Phase::kArrival);
      while (next_arrival < arrival_order.size()) {
        SimJob& j = state_.jobs_[arrival_order[next_arrival].value()];
        if (j.arrival_time > now_ + kTimeEpsilon) break;
        ++next_arrival;
        arrive_job(j);
        dirty = true;
      }
    }

    // Coordination tick; only a changed priority forces a rate recompute.
    if (tick > 0 && now_ + kTimeEpsilon >= next_tick) {
      obs::ScopedPhase tick_phase(prof, obs::Phase::kTick);
      if (scheduler_->on_tick(now_)) dirty = true;
      next_tick += tick;
    }
  }

  const int results_prev =
      prof != nullptr ? prof->enter(obs::Phase::kResults) : -1;
  results.makespan = now_;
  results.jobs.reserve(state_.jobs_.size());
  for (const SimJob& j : state_.jobs_) {
    GURITA_CHECK_MSG(j.finished(), "job left unfinished at end of run");
    results.jobs.push_back(SimResults::JobResult{j.id, j.arrival_time,
                                                 j.finish_time, j.total_bytes,
                                                 j.num_stages});
  }
  results.coflows.reserve(state_.coflows_.size());
  for (const SimCoflow& c : state_.coflows_) {
    results.coflows.push_back(SimResults::CoflowResult{
        c.id, c.job, c.stage, c.release_time, c.finish_time,
        state_.coflow_total_bytes(c.id)});
  }
  live_results_ = nullptr;
  if (prof != nullptr) {
    prof->leave(results_prev);
    prof->end_run();
  }
  return results;
}

}  // namespace gurita
