#include "flowsim/simulator.h"
#include <sstream>

#include <algorithm>
#include <cmath>

#include "flowsim/allocator.h"

namespace gurita {

double SimResults::average_jct() const {
  if (jobs.empty()) return 0.0;
  double s = 0;
  for (const JobResult& j : jobs) s += j.jct();
  return s / static_cast<double>(jobs.size());
}

double SimResults::average_cct() const {
  if (coflows.empty()) return 0.0;
  double s = 0;
  for (const CoflowResult& c : coflows) s += c.cct();
  return s / static_cast<double>(coflows.size());
}

Bytes SimState::coflow_bytes_sent(CoflowId id) const {
  Bytes sent = 0;
  for (FlowId f : coflow(id).flows) sent += flow(f).bytes_sent();
  return sent;
}

Bytes SimState::coflow_total_bytes(CoflowId id) const {
  const SimCoflow& c = coflow(id);
  const SimJob& j = job(c.job);
  return j.spec.coflows[c.index].total_bytes();
}

Bytes SimState::job_stage_bytes_sent(JobId id, int stage) const {
  const SimJob& j = job(id);
  Bytes sent = 0;
  for (std::size_t i = 0; i < j.coflows.size(); ++i) {
    if (j.stage_of[i] != stage) continue;
    const SimCoflow& c = coflow(j.coflows[i]);
    if (!c.released()) continue;
    sent += coflow_bytes_sent(c.id);
  }
  return sent;
}

Bytes SimState::job_bytes_sent(JobId id) const {
  const SimJob& j = job(id);
  Bytes sent = 0;
  for (CoflowId cid : j.coflows) {
    if (coflow(cid).released()) sent += coflow_bytes_sent(cid);
  }
  return sent;
}

int SimState::coflow_open_connections(CoflowId id) const {
  int open = 0;
  for (FlowId f : coflow(id).flows)
    if (flow(f).active()) ++open;
  return open;
}

double SimResults::link_utilization(LinkId id, Rate capacity) const {
  GURITA_CHECK_MSG(id.value() < link_bytes.size(),
                   "link stats not collected or id out of range");
  GURITA_CHECK_MSG(capacity > 0, "capacity must be positive");
  if (makespan <= 0) return 0.0;
  return link_bytes[id.value()] / (capacity * makespan);
}

Simulator::Simulator(const Fabric& fabric, Scheduler& scheduler,
                     Config config)
    : fabric_(&fabric), scheduler_(&scheduler), config_(std::move(config)) {
  capacities_.resize(fabric.topology().link_count());
  for (std::size_t i = 0; i < capacities_.size(); ++i)
    capacities_[i] = fabric.topology().link(LinkId{i}).capacity;
  for (const CapacityChange& change : config_.disruptions) {
    GURITA_CHECK_MSG(change.link.value() < capacities_.size(),
                     "disruption targets an unknown link");
    GURITA_CHECK_MSG(change.new_capacity >= 0, "negative capacity");
    GURITA_CHECK_MSG(change.time >= 0, "disruption before time zero");
  }
}

JobId Simulator::submit(const JobSpec& spec) {
  GURITA_CHECK_MSG(!ran_, "submit after run()");
  validate(spec, fabric_->num_hosts());

  const JobId jid{state_.jobs_.size()};
  SimJob job;
  job.id = jid;
  job.spec = spec;
  job.arrival_time = spec.arrival_time;
  job.stage_of = stages_of(spec);
  job.num_stages = 0;
  for (int s : job.stage_of) job.num_stages = std::max(job.num_stages, s);
  job.coflows_remaining = static_cast<int>(spec.coflows.size());
  job.total_bytes = spec.total_bytes();

  for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
    const CoflowId cid{state_.coflows_.size()};
    SimCoflow c;
    c.id = cid;
    c.job = jid;
    c.index = static_cast<int>(i);
    c.stage = job.stage_of[i];
    c.deps_remaining = static_cast<int>(spec.deps[i].size());
    state_.coflows_.push_back(std::move(c));
    job.coflows.push_back(cid);
  }
  state_.jobs_.push_back(std::move(job));
  return jid;
}

void Simulator::release_coflow(SimCoflow& coflow) {
  GURITA_CHECK_MSG(!coflow.released(), "double release");
  const SimJob& job = state_.jobs_[coflow.job.value()];
  const CoflowSpec& spec = job.spec.coflows[coflow.index];

  coflow.release_time = now_;
  coflow.flows_remaining = static_cast<int>(spec.flows.size());
  for (const FlowSpec& fs : spec.flows) {
    const FlowId fid{state_.flows_.size()};
    SimFlow f;
    f.id = fid;
    f.job = coflow.job;
    f.coflow_index = coflow.index;
    f.src_host = fs.src_host;
    f.dst_host = fs.dst_host;
    f.size = fs.size;
    f.remaining = fs.size;
    f.start_time = now_;
    f.path = fabric_->route(fid, fs.src_host, fs.dst_host);
    state_.flows_.push_back(std::move(f));
    coflow.flows.push_back(fid);
    active_flows_.push_back(fid);
  }
  scheduler_->on_coflow_release(coflow, now_);
}

void Simulator::finish_coflow(SimCoflow& coflow) {
  coflow.finish_time = now_;
  scheduler_->on_coflow_finish(coflow, now_);

  SimJob& job = state_.jobs_[coflow.job.value()];
  --job.coflows_remaining;

  // Maintain completed_stages: largest k with every coflow of stage <= k done.
  // Recompute lazily from per-stage unfinished counts.
  // (Counts are tracked in unfinished_per_stage_, engine-private.)

  // Release dependents whose dependencies are now all complete.
  const JobSpec& spec = job.spec;
  for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
    SimCoflow& cand = state_.coflows_[job.coflows[i].value()];
    if (cand.released()) continue;
    bool depends = false;
    for (int d : spec.deps[i]) {
      if (d == coflow.index) {
        depends = true;
        break;
      }
    }
    if (!depends) continue;
    if (--cand.deps_remaining == 0) release_coflow(cand);
  }

  if (job.coflows_remaining == 0) {
    job.finish_time = now_;
    job.completed_stages = job.num_stages;
    scheduler_->on_job_finish(job, now_);
  } else {
    // Update completed stages by scanning (jobs are small DAGs; this is
    // O(coflows) on coflow completion only).
    int k = job.num_stages;
    for (std::size_t i = 0; i < job.coflows.size(); ++i) {
      const SimCoflow& c = state_.coflows_[job.coflows[i].value()];
      if (!c.finished()) k = std::min(k, job.stage_of[i] - 1);
    }
    job.completed_stages = k;
  }
}

void Simulator::finish_flow(SimFlow& flow) {
  flow.finish_time = now_;
  flow.remaining = 0;
  flow.rate = 0;
  SimCoflow& coflow =
      state_.coflows_[state_.jobs_[flow.job.value()].coflows[flow.coflow_index].value()];
  --coflow.flows_remaining;
  scheduler_->on_flow_finish(flow, now_);
  if (coflow.flows_remaining == 0) finish_coflow(coflow);
}

void Simulator::arrive_job(SimJob& job) {
  scheduler_->on_job_arrival(job, now_);
  for (std::size_t i = 0; i < job.coflows.size(); ++i) {
    SimCoflow& c = state_.coflows_[job.coflows[i].value()];
    if (c.deps_remaining == 0) release_coflow(c);
  }
}

SimResults Simulator::run() {
  GURITA_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  scheduler_->attach(state_);

  std::vector<JobId> arrival_order;
  arrival_order.reserve(state_.jobs_.size());
  for (const SimJob& j : state_.jobs_) arrival_order.push_back(j.id);
  std::sort(arrival_order.begin(), arrival_order.end(),
            [this](JobId a, JobId b) {
              const Time ta = state_.jobs_[a.value()].arrival_time;
              const Time tb = state_.jobs_[b.value()].arrival_time;
              if (ta != tb) return ta < tb;
              return a < b;
            });

  std::size_t next_arrival = 0;
  const Time tick = scheduler_->tick_interval();
  GURITA_CHECK_MSG(tick >= 0, "negative tick interval");
  Time next_tick = std::numeric_limits<Time>::infinity();
  bool dirty = true;
  SimResults results;
  if (config_.collect_link_stats)
    results.link_bytes.assign(fabric_->topology().link_count(), 0.0);

  // Failure injection: apply capacity changes in time order.
  std::vector<CapacityChange> disruptions = config_.disruptions;
  std::sort(disruptions.begin(), disruptions.end(),
            [](const CapacityChange& a, const CapacityChange& b) {
              return a.time < b.time;
            });
  std::size_t next_disruption = 0;
  const auto apply_due_disruptions = [&] {
    while (next_disruption < disruptions.size() &&
           disruptions[next_disruption].time <= now_ + kTimeEpsilon) {
      const CapacityChange& change = disruptions[next_disruption++];
      capacities_[change.link.value()] = change.new_capacity;
      dirty = true;
    }
  };

  std::vector<SimFlow*> active_ptrs;
  std::uint64_t iterations = 0;

  while (next_arrival < arrival_order.size() || !active_flows_.empty()) {
    if (++iterations > config_.max_iterations) {
      std::ostringstream os;
      os << "simulation live-lock guard tripped: now=" << now_
         << " active_flows=" << active_flows_.size()
         << " pending_arrivals=" << (arrival_order.size() - next_arrival)
         << " recomputations=" << results.rate_recomputations;
      throw std::logic_error(os.str());
    }
    if (active_flows_.empty()) {
      // Idle network: jump straight to the next arrival.
      SimJob& job = state_.jobs_[arrival_order[next_arrival].value()];
      now_ = std::max(now_, job.arrival_time);
      ++next_arrival;
      arrive_job(job);
      // Coalesce simultaneous arrivals.
      while (next_arrival < arrival_order.size()) {
        SimJob& j = state_.jobs_[arrival_order[next_arrival].value()];
        if (j.arrival_time > now_ + kTimeEpsilon) break;
        ++next_arrival;
        arrive_job(j);
      }
      if (tick > 0) next_tick = now_ + tick;
      apply_due_disruptions();
      dirty = true;
      continue;
    }

    bool any_ramp_capped = false;
    if (dirty) {
      active_ptrs.clear();
      for (FlowId id : active_flows_)
        active_ptrs.push_back(&state_.flows_[id.value()]);
      scheduler_->assign(now_, active_ptrs);
      allocate_rates(fabric_->topology(), capacities_, active_ptrs);
      ++results.rate_recomputations;
      dirty = false;
    }
    // TCP slow-start ramp: cap each flow at its window-growth rate. A
    // capped flow's allowance grows as it sends, so while any flow is
    // capped the engine refreshes rates at ramp-time granularity.
    if (config_.tcp_ramp_time > 0) {
      for (FlowId id : active_flows_) {
        SimFlow& f = state_.flows_[id.value()];
        const Rate cap =
            (config_.tcp_initial_window + f.bytes_sent()) / config_.tcp_ramp_time;
        if (f.rate > cap) {
          f.rate = cap;
          any_ramp_capped = true;
        }
      }
    }

    Time t_complete = std::numeric_limits<Time>::infinity();
    for (FlowId id : active_flows_) {
      const SimFlow& f = state_.flows_[id.value()];
      if (f.rate > 0)
        t_complete = std::min(t_complete, now_ + f.remaining / f.rate);
    }
    const Time t_arrival =
        next_arrival < arrival_order.size()
            ? state_.jobs_[arrival_order[next_arrival].value()].arrival_time
            : std::numeric_limits<Time>::infinity();
    const Time t_tick = tick > 0 ? next_tick : std::numeric_limits<Time>::infinity();
    const Time t_disruption = next_disruption < disruptions.size()
                                  ? disruptions[next_disruption].time
                                  : std::numeric_limits<Time>::infinity();

    Time t_next = std::min({t_complete, t_arrival, t_tick, t_disruption});
    if (any_ramp_capped) {
      // Refresh while ramping so capped flows pick up their grown windows.
      t_next = std::min(t_next, now_ + config_.tcp_ramp_time);
      dirty = true;
    }
    GURITA_CHECK_MSG(std::isfinite(t_next),
                     "simulation stalled: active flows but no next event");
    GURITA_CHECK_MSG(t_next <= config_.max_time, "simulation exceeded max_time");
    t_next = std::max(t_next, now_);

    const Time dt = t_next - now_;
    if (dt > 0) {
      for (FlowId id : active_flows_) {
        SimFlow& f = state_.flows_[id.value()];
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
        if (config_.collect_link_stats && f.rate > 0) {
          for (LinkId l : f.path)
            results.link_bytes[l.value()] += f.rate * dt;
        }
      }
    }
    now_ = t_next;
    apply_due_disruptions();

    // Completions (deterministic order: ascending flow id). A flow is done
    // when its residual bytes are negligible OR its residual transfer time
    // falls below the clock's floating-point resolution at `now_` — without
    // the second clause a nearly-drained flow whose remaining/rate is
    // smaller than one ulp of now_ would stall the clock forever.
    const Time quantum = std::max(1.0, now_) * 1e-12;
    std::vector<FlowId> done;
    for (FlowId id : active_flows_) {
      const SimFlow& f = state_.flows_[id.value()];
      if (f.remaining <= kByteEpsilon || f.remaining <= f.rate * quantum)
        done.push_back(id);
    }
    if (!done.empty()) {
      std::sort(done.begin(), done.end());
      for (FlowId id : done) finish_flow(state_.flows_[id.value()]);
      std::erase_if(active_flows_, [this](FlowId id) {
        return state_.flows_[id.value()].finished();
      });
      dirty = true;
    }

    // Arrivals due now.
    while (next_arrival < arrival_order.size()) {
      SimJob& j = state_.jobs_[arrival_order[next_arrival].value()];
      if (j.arrival_time > now_ + kTimeEpsilon) break;
      ++next_arrival;
      arrive_job(j);
      dirty = true;
    }

    // Coordination tick; only a changed priority forces a rate recompute.
    if (tick > 0 && now_ + kTimeEpsilon >= next_tick) {
      if (scheduler_->on_tick(now_)) dirty = true;
      next_tick += tick;
    }
  }

  results.makespan = now_;
  results.jobs.reserve(state_.jobs_.size());
  for (const SimJob& j : state_.jobs_) {
    GURITA_CHECK_MSG(j.finished(), "job left unfinished at end of run");
    results.jobs.push_back(SimResults::JobResult{j.id, j.arrival_time,
                                                 j.finish_time, j.total_bytes,
                                                 j.num_stages});
  }
  results.coflows.reserve(state_.coflows_.size());
  for (const SimCoflow& c : state_.coflows_) {
    results.coflows.push_back(SimResults::CoflowResult{
        c.id, c.job, c.stage, c.release_time, c.finish_time,
        state_.coflow_total_bytes(c.id)});
  }
  return results;
}

}  // namespace gurita
