#include "flowsim/simulator.h"
#include <sstream>

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "fault/validation.h"
#include "flowsim/allocator.h"

namespace gurita {

double SimResults::average_jct() const {
  double s = 0;
  std::size_t n = 0;
  for (const JobResult& j : jobs) {
    if (j.failed) continue;  // abandonment time is not a completion
    s += j.jct();
    ++n;
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double SimResults::average_cct() const {
  double s = 0;
  std::size_t n = 0;
  for (const CoflowResult& c : coflows) {
    if (c.failed) continue;
    s += c.cct();
    ++n;
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

void SimResults::merge_counters(const SimResults& other) {
  makespan = std::max(makespan, other.makespan);
  rate_recomputations += other.rate_recomputations;
  events += other.events;
  flow_touches += other.flow_touches;
  legacy_flow_touches += other.legacy_flow_touches;
  flow_aborts += other.flow_aborts;
  flow_retries += other.flow_retries;
  failed_jobs += other.failed_jobs;
  bytes_lost += other.bytes_lost;
  bytes_retransmitted += other.bytes_retransmitted;
  total_recovery_latency += other.total_recovery_latency;
}

void SimResults::export_counters(obs::Registry& registry) const {
  registry.add("engine.events", events);
  registry.add("engine.flow_touches", flow_touches);
  registry.add("engine.legacy_flow_touches", legacy_flow_touches);
  registry.add("engine.rate_recomputations", rate_recomputations);
  registry.add("fault.flow_aborts", flow_aborts);
  registry.add("fault.flow_retries", flow_retries);
  registry.add("fault.failed_jobs", failed_jobs);
  registry.set_gauge("engine.makespan", makespan);
}

double SimResults::link_utilization(LinkId id, Rate capacity) const {
  GURITA_CHECK_MSG(id.value() < link_bytes.size(),
                   "link stats not collected or id out of range");
  GURITA_CHECK_MSG(capacity > 0, "capacity must be positive");
  if (makespan <= 0) return 0.0;
  return link_bytes[id.value()] / (capacity * makespan);
}

namespace {

/// The adopt/return primitive of buffer recycling: `dst` takes over `src`'s
/// allocation and is cleared — capacity is reused, values never are. `src`
/// is left moved-from (empty), which is what makes a double-borrowed pool
/// safe: the second borrower adopts nothing and allocates fresh.
template <typename T>
void adopt_cleared(std::vector<T>& dst, std::vector<T>& src) {
  dst = std::move(src);
  dst.clear();
}

}  // namespace

void Simulator::adopt_buffers(SimBufferPool& pool) {
  adopt_cleared(state_.flows_, pool.flows);
  adopt_cleared(state_.coflows_, pool.coflows);
  adopt_cleared(state_.jobs_, pool.jobs);
  adopt_cleared(state_.aggregates_, pool.aggregates);
  adopt_cleared(active_, pool.active);
  adopt_cleared(pos_in_active_, pool.pos_in_active);
  adopt_cleared(gen_, pool.gen);
  adopt_cleared(rate_changes_, pool.rate_changes);
  adopt_cleared(arrival_order_, pool.arrival_order);
  adopt_cleared(disruptions_, pool.disruptions);
  adopt_cleared(done_, pool.done);
  adopt_cleared(capacities_, pool.capacities);
  adopt_cleared(fault_events_, pool.fault_events);
  adopt_cleared(host_down_, pool.host_down);
  adopt_cleared(link_down_, pool.link_down);
  adopt_cleared(straggler_, pool.straggler);
  adopt_cleared(saved_capacity_, pool.saved_capacity);
  adopt_cleared(parked_, pool.parked);
  adopt_cleared(capped_, pool.capped);
  // The allocator recycles whole: reset() (prepare_structures) clears it
  // while reusing its per-link and per-flow array capacity.
  alloc_ = std::move(pool.allocator);
  pool.allocator = RateAllocator{};
  // Heaps restore a cleared array — an empty array is a valid layout.
  pool.calendar.clear();
  calendar_.restore(std::move(pool.calendar));
  pool.retries.clear();
  retries_.restore(std::move(pool.retries));
}

void Simulator::return_buffers(SimBufferPool& pool) {
  pool.flows = std::move(state_.flows_);
  pool.coflows = std::move(state_.coflows_);
  pool.jobs = std::move(state_.jobs_);
  pool.aggregates = std::move(state_.aggregates_);
  pool.active = std::move(active_);
  pool.pos_in_active = std::move(pos_in_active_);
  pool.gen = std::move(gen_);
  pool.rate_changes = std::move(rate_changes_);
  pool.arrival_order = std::move(arrival_order_);
  pool.disruptions = std::move(disruptions_);
  pool.done = std::move(done_);
  pool.capacities = std::move(capacities_);
  pool.fault_events = std::move(fault_events_);
  pool.host_down = std::move(host_down_);
  pool.link_down = std::move(link_down_);
  pool.straggler = std::move(straggler_);
  pool.saved_capacity = std::move(saved_capacity_);
  pool.parked = std::move(parked_);
  pool.capped = std::move(capped_);
  pool.allocator = std::move(alloc_);
  pool.calendar = calendar_.take_container();
  pool.retries = retries_.take_container();
}

Simulator::~Simulator() {
  if (config_.recycle != nullptr) return_buffers(*config_.recycle);
}

Simulator::Simulator(const Fabric& fabric, Scheduler& scheduler,
                     Config config)
    : fabric_(&fabric), scheduler_(&scheduler), config_(std::move(config)) {
  // Adopt before any container is touched so every resize/assign below
  // lands in recycled capacity instead of a fresh multi-megabyte mmap.
  if (config_.recycle != nullptr) adopt_buffers(*config_.recycle);
  capacities_.resize(fabric.topology().link_count());
  for (std::size_t i = 0; i < capacities_.size(); ++i)
    capacities_[i] = fabric.topology().link(LinkId{i}).capacity;
  // Both schedules are validated up front (fault/validation.h) so a bad
  // config throws a ConfigError listing every problem before any event
  // executes — never mid-run.
  validate_capacity_changes(config_.disruptions, capacities_.size());
  validate_fault_plan(config_.faults, fabric.num_hosts(), capacities_.size());

  have_faults_ = !config_.faults.events.empty();
  if (have_faults_) {
    fault_events_ = config_.faults.events;
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.time < b.time;
                     });
    host_down_.assign(fabric.num_hosts(), 0);
    straggler_.assign(fabric.num_hosts(), 1.0);
    link_down_.assign(capacities_.size(), 0);
    saved_capacity_.assign(capacities_.size(), 0.0);
  }
}

JobId Simulator::submit(const JobSpec& spec) {
  GURITA_CHECK_MSG(!ran_, "submit after run()");
  validate(spec, fabric_->num_hosts());
  return register_job(spec);
}

JobId Simulator::register_job(const JobSpec& spec) {
  const JobId jid{state_.jobs_.size()};
  SimJob job;
  job.id = jid;
  job.spec = spec;
  job.arrival_time = spec.arrival_time;
  job.stage_of = stages_of(spec);
  job.num_stages = 0;
  for (int s : job.stage_of) job.num_stages = std::max(job.num_stages, s);
  job.coflows_remaining = static_cast<int>(spec.coflows.size());
  job.total_bytes = spec.total_bytes();

  for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
    const CoflowId cid{state_.coflows_.size()};
    SimCoflow c;
    c.id = cid;
    c.job = jid;
    c.index = static_cast<int>(i);
    c.stage = job.stage_of[i];
    c.deps_remaining = static_cast<int>(spec.deps[i].size());
    state_.coflows_.push_back(std::move(c));
    state_.aggregates_.emplace_back();
    job.coflows.push_back(cid);
  }
  state_.jobs_.push_back(std::move(job));
  return jid;
}

SimState::CoflowAggregate& Simulator::aggregate_of(const SimFlow& flow) {
  const CoflowId cid =
      state_.jobs_[flow.job.value()].coflows[flow.coflow_index];
  return state_.aggregates_[cid.value()];
}

void Simulator::settle(SimFlow& flow) {
  const Time elapsed = now_ - flow.last_touched;
  if (elapsed > 0 && flow.rate > 0) {
    if (config_.collect_link_stats) {
      for (LinkId l : flow.path)
        live_results_->link_bytes[l.value()] += flow.rate * elapsed;
    }
    const Bytes after = std::max(0.0, flow.remaining - flow.rate * elapsed);
    SimState::CoflowAggregate& agg = aggregate_of(flow);
    agg.base_bytes += flow.remaining - after;
    // The flow's rate·last_touched contribution moves to rate·now_, so the
    // aggregate's linear form keeps reporting the same bytes_sent(now_).
    agg.rate_time_sum += flow.rate * elapsed;
    flow.remaining = after;
  }
  flow.last_touched = now_;
}

void Simulator::set_rate(SimFlow& flow, Rate new_rate) {
  // Requires a settled flow (last_touched == now_), so the old rate's
  // drain has already been folded into the aggregate.
  SimState::CoflowAggregate& agg = aggregate_of(flow);
  agg.rate_sum += new_rate - flow.rate;
  agg.rate_time_sum += (new_rate - flow.rate) * now_;
  flow.rate = new_rate;
}

void Simulator::push_key(SimFlow& flow) {
  const std::uint32_t gen = ++gen_[flow.id.value()];
  if (flow.remaining <= kByteEpsilon) {
    // Already drained (zero-size flows, epsilon residue): due immediately.
    calendar_.push(CalendarEntry{now_, gen, flow.id});
  } else if (flow.rate > 0) {
    calendar_.push(
        CalendarEntry{now_ + flow.remaining / flow.rate, gen, flow.id});
  }
  // rate == 0 with real bytes left: no projected finish. The flow re-enters
  // the calendar when a recomputation next gives it a rate; if nothing ever
  // does (e.g. a dead link), the engine's stall guard fires as before.
}

void Simulator::remove_from_active(SimFlow& flow) {
  const std::uint32_t pos = pos_in_active_[flow.id.value()];
  SimFlow* last = active_.back();
  active_[pos] = last;
  pos_in_active_[last->id.value()] = pos;
  active_.pop_back();
  // Every departure path (finish, abort, job failure) funnels through
  // here, so this is the single point the allocator learns a flow left.
  alloc_.remove_flow(&flow);
}

void Simulator::release_coflow(SimCoflow& coflow) {
  obs::ScopedPhase phase(config_.profiler, obs::Phase::kDagRelease);
  GURITA_CHECK_MSG(!coflow.released(), "double release");
  const SimJob& job = state_.jobs_[coflow.job.value()];
  const CoflowSpec& spec = job.spec.coflows[coflow.index];

  coflow.release_time = now_;
  coflow.flows_remaining = static_cast<int>(spec.flows.size());
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kCoflowRelease)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kCoflowRelease;
    r.time = now_;
    r.job = coflow.job.value();
    r.coflow = coflow.id.value();
    r.i0 = coflow.stage;
    r.i1 = static_cast<std::int32_t>(spec.flows.size());
    tr->emit(r);
  }
  SimState::CoflowAggregate& agg = state_.aggregates_[coflow.id.value()];
  for (const FlowSpec& fs : spec.flows) {
    GURITA_CHECK_MSG(state_.flows_.size() < state_.flows_.capacity(),
                     "flow store would reallocate under the active list");
    const FlowId fid{state_.flows_.size()};
    SimFlow f;
    f.id = fid;
    f.job = coflow.job;
    f.coflow_index = coflow.index;
    f.src_host = fs.src_host;
    f.dst_host = fs.dst_host;
    f.size = fs.size;
    f.remaining = fs.size;
    f.start_time = now_;
    f.last_touched = now_;
    f.path = fabric_->route(fid, fs.src_host, fs.dst_host);
    state_.flows_.push_back(std::move(f));
    coflow.flows.push_back(fid);

    SimFlow& stored = state_.flows_.back();
    pos_in_active_.push_back(static_cast<std::uint32_t>(active_.size()));
    gen_.push_back(0);
    active_.push_back(&stored);
    alloc_.add_flow(&stored);
    ++agg.open_connections;
    push_key(stored);
    ++live_results_->flow_touches;
    if (tr && tr->wants(obs::TraceEventKind::kFlowRelease)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kFlowRelease;
      r.time = now_;
      r.job = coflow.job.value();
      r.coflow = coflow.id.value();
      r.flow = fid.value();
      r.i0 = fs.src_host;
      r.i1 = fs.dst_host;
      r.v0 = fs.size;
      tr->emit(r);
    }
    // A flow born onto a dead host or link cannot transmit: it parks
    // immediately (no retry attempt consumed — park-at-release is the
    // fault's fault, not the flow's) and re-enters on recovery.
    if (have_faults_ && flow_blocked(stored)) {
      const FaultKind cause =
          (host_down_[stored.src_host] || host_down_[stored.dst_host])
              ? FaultKind::kHostDown
              : FaultKind::kLinkDown;
      abort_flow(stored, cause, /*count_attempt=*/false);
    }
  }
  scheduler_->on_coflow_release(coflow, now_);
}

void Simulator::finish_coflow(SimCoflow& coflow) {
  coflow.finish_time = now_;
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kCoflowFinish)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kCoflowFinish;
    r.time = now_;
    r.job = coflow.job.value();
    r.coflow = coflow.id.value();
    r.i0 = coflow.stage;
    r.v0 = coflow.release_time;
    tr->emit(r);
  }
  scheduler_->on_coflow_finish(coflow, now_);

  SimJob& job = state_.jobs_[coflow.job.value()];
  --job.coflows_remaining;
  const int prev_stages = job.completed_stages;

  // Release dependents whose dependencies are now all complete.
  const JobSpec& spec = job.spec;
  for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
    SimCoflow& cand = state_.coflows_[job.coflows[i].value()];
    if (cand.released()) continue;
    bool depends = false;
    for (int d : spec.deps[i]) {
      if (d == coflow.index) {
        depends = true;
        break;
      }
    }
    if (!depends) continue;
    if (--cand.deps_remaining == 0) release_coflow(cand);
  }

  if (job.coflows_remaining == 0) {
    job.finish_time = now_;
    job.completed_stages = job.num_stages;
    scheduler_->on_job_finish(job, now_);
  } else {
    // Update completed stages by scanning (jobs are small DAGs; this is
    // O(coflows) on coflow completion only).
    int k = job.num_stages;
    for (std::size_t i = 0; i < job.coflows.size(); ++i) {
      const SimCoflow& c = state_.coflows_[job.coflows[i].value()];
      if (!c.finished()) k = std::min(k, job.stage_of[i] - 1);
    }
    job.completed_stages = k;
  }
  if (tr != nullptr) {
    if (job.completed_stages > prev_stages &&
        tr->wants(obs::TraceEventKind::kStageComplete)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kStageComplete;
      r.time = now_;
      r.job = job.id.value();
      r.i0 = job.completed_stages;
      tr->emit(r);
    }
    if (job.finished() && tr->wants(obs::TraceEventKind::kJobFinish)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kJobFinish;
      r.time = now_;
      r.job = job.id.value();
      r.v0 = job.arrival_time;
      tr->emit(r);
    }
  }
}

void Simulator::finish_flow(SimFlow& flow) {
  settle(flow);
  set_rate(flow, 0.0);
  SimState::CoflowAggregate& agg = aggregate_of(flow);
  // The negligible residual (completion predicate) counts as delivered, so
  // a finished flow reports bytes_sent() == size, as before.
  agg.base_bytes += flow.remaining;
  flow.remaining = 0;
  agg.ell_max_settled = std::max(agg.ell_max_settled, flow.size);
  --agg.open_connections;
  ++gen_[flow.id.value()];  // invalidate any pending calendar entry
  remove_from_active(flow);
  flow.finish_time = now_;
  // Bytes this flow lost to aborts were all re-sent by the time it finished.
  live_results_->bytes_retransmitted += flow.lost_bytes;
  ++live_results_->flow_touches;
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kFlowFinish)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kFlowFinish;
    r.time = now_;
    r.job = flow.job.value();
    r.coflow =
        state_.jobs_[flow.job.value()].coflows[flow.coflow_index].value();
    r.flow = flow.id.value();
    r.v0 = flow.size;
    tr->emit(r);
  }

  SimCoflow& coflow =
      state_.coflows_[state_.jobs_[flow.job.value()].coflows[flow.coflow_index].value()];
  --coflow.flows_remaining;
  scheduler_->on_flow_finish(flow, now_);
  if (coflow.flows_remaining == 0) finish_coflow(coflow);
}

void Simulator::arrive_job(SimJob& job) {
  if (config_.trace &&
      config_.trace->wants(obs::TraceEventKind::kJobArrival)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kJobArrival;
    r.time = now_;
    r.job = job.id.value();
    r.i0 = job.num_stages;
    config_.trace->emit(r);
  }
  scheduler_->on_job_arrival(job, now_);
  for (std::size_t i = 0; i < job.coflows.size(); ++i) {
    SimCoflow& c = state_.coflows_[job.coflows[i].value()];
    if (c.deps_remaining == 0) release_coflow(c);
  }
}

// --- run-loop decomposition --------------------------------------------------
//
// run() used to be one monolithic loop; it is now prepare() + step()* +
// collect() with every loop-carried local hoisted into a member, so the loop
// can pause between iterations (run_until), be serialized (checkpoint) and
// continue in another process (restore + finish) with byte-identical
// results. The bodies below are the old run() verbatim, modulo the member
// renames — behaviour is bit-for-bit unchanged.

void Simulator::prepare_structures() {
  // Hand the recorder to the scheduler so its decision records (queue
  // transitions, WRR weights) interleave with engine records in emission
  // order. Only wired when tracing is on, so a scheduler driven by another
  // engine (the differential oracle) can be given a recorder directly.
  if (config_.trace != nullptr)
    scheduler_->set_trace_recorder(config_.trace);
  scheduler_->attach(state_);

  // active_ holds raw pointers into flows_; reserve the backing store up
  // front so it never reallocates mid-run.
  std::size_t total_flows = 0;
  for (const SimJob& j : state_.jobs_)
    for (const CoflowSpec& c : j.spec.coflows) total_flows += c.flows.size();
  flows_reserved_ = total_flows;
  state_.flows_.reserve(total_flows);
  pos_in_active_.reserve(total_flows);
  gen_.reserve(total_flows);
  alloc_.reset(&fabric_->topology(), config_.allocator, total_flows);
  capped_.clear();

  arrival_order_.clear();
  arrival_order_.reserve(state_.jobs_.size());
  for (const SimJob& j : state_.jobs_) arrival_order_.push_back(j.id);
  std::sort(arrival_order_.begin(), arrival_order_.end(),
            [this](JobId a, JobId b) {
              const Time ta = state_.jobs_[a.value()].arrival_time;
              const Time tb = state_.jobs_[b.value()].arrival_time;
              if (ta != tb) return ta < tb;
              return a < b;
            });

  tick_ = scheduler_->tick_interval();
  GURITA_CHECK_MSG(tick_ >= 0, "negative tick interval");

  // Failure injection: apply capacity changes in time order.
  disruptions_ = config_.disruptions;
  std::sort(disruptions_.begin(), disruptions_.end(),
            [](const CapacityChange& a, const CapacityChange& b) {
              return a.time < b.time;
            });

  live_results_ = &results_;
}

void Simulator::prepare() {
  GURITA_CHECK_MSG(!ran_, "run() called twice");
  GURITA_CHECK_MSG(config_.sampler == nullptr || config_.trace != nullptr,
                   "interval sampler requires a trace recorder");
  ran_ = true;
  prepared_ = true;
  if (config_.sampler != nullptr) config_.sampler->start_wall();
  obs::PhaseProfiler* prof = config_.profiler;
  if (prof != nullptr) prof->begin_run();
  const int setup_prev =
      prof != nullptr ? prof->enter(obs::Phase::kSetup) : -1;
  prepare_structures();
  next_arrival_ = 0;
  next_tick_ = std::numeric_limits<Time>::infinity();
  next_disruption_ = 0;
  iterations_ = 0;
  dirty_ = true;
  if (config_.collect_link_stats)
    results_.link_bytes.assign(fabric_->topology().link_count(), 0.0);
  if (prof != nullptr) prof->leave(setup_prev);
}

void Simulator::apply_due_disruptions() {
  while (next_disruption_ < disruptions_.size() &&
         disruptions_[next_disruption_].time <= now_ + kTimeEpsilon) {
    const CapacityChange& change = disruptions_[next_disruption_++];
    capacities_[change.link.value()] = change.new_capacity;
    alloc_.dirty_link(change.link);
    if (config_.trace &&
        config_.trace->wants(obs::TraceEventKind::kCapacityChange)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kCapacityChange;
      r.time = now_;
      r.i0 = static_cast<std::int32_t>(change.link.value());
      r.v0 = change.new_capacity;
      config_.trace->emit(r);
    }
    dirty_ = true;
  }
}

void Simulator::step() {
  step_impl();
  // Poll outside the event body so every exit path (the idle-branch early
  // returns included) hits the same poll point an uninterrupted run does.
  if (config_.sampler != nullptr) poll_sampler();
}

void Simulator::step_impl() {
  obs::PhaseProfiler* prof = config_.profiler;
  if (++iterations_ > config_.max_iterations) {
    std::ostringstream os;
    os << "simulation live-lock guard tripped: now=" << now_
       << " active_flows=" << active_.size()
       << " pending_arrivals=" << (arrival_order_.size() - next_arrival_)
       << " recomputations=" << results_.rate_recomputations;
    throw std::logic_error(os.str());
  }
  ++results_.events;
  if (active_.empty()) {
    obs::ScopedPhase arrival_phase(prof, obs::Phase::kArrival);
    // Idle network: jump straight to whatever wakes it — the next
    // arrival, or (under fault injection) the next fault event or due
    // retry. Without faults this is exactly the next arrival, as before.
    const Time t_arr =
        next_arrival_ < arrival_order_.size()
            ? state_.jobs_[arrival_order_[next_arrival_].value()].arrival_time
            : std::numeric_limits<Time>::infinity();
    Time t_idle = t_arr;
    if (have_faults_) {
      const Time t_fault = next_fault_ < fault_events_.size()
                               ? fault_events_[next_fault_].time
                               : std::numeric_limits<Time>::infinity();
      t_idle = std::min({t_arr, t_fault, next_retry_time()});
    }
    if (!std::isfinite(t_idle)) {
      // Flows are parked but nothing in the plan will ever wake them:
      // their jobs can never finish, so fail them instead of spinning.
      fail_stranded_jobs();
      return;
    }
    if (t_idle >= horizon_) {
      // Horizon pause (run_to): roll back the iteration accounting so a
      // paused+resumed run counts exactly the events an uninterrupted one
      // does, and hand control back before anything mutates.
      --iterations_;
      --results_.events;
      paused_at_horizon_ = true;
      return;
    }
    now_ = std::max(now_, t_idle);
    state_.now_ = now_;
    // Fault state must be current before any flow releases (a job
    // arriving onto a crashed host parks its flows at release).
    if (have_faults_) {
      apply_due_faults();
      fire_due_retries();
    }
    while (next_arrival_ < arrival_order_.size()) {
      SimJob& j = state_.jobs_[arrival_order_[next_arrival_].value()];
      if (j.arrival_time > now_ + kTimeEpsilon) break;
      ++next_arrival_;
      arrive_job(j);
    }
    if (tick_ > 0) next_tick_ = now_ + tick_;
    apply_due_disruptions();
    dirty_ = true;
    return;
  }

  const bool was_dirty = dirty_;
  // A horizon pause may have interrupted this event after its allocation
  // marked the TCP-ramp refresh; replay that mark on resume.
  bool any_ramp_capped = pending_ramp_;
  if (dirty_) {
    {
      obs::ScopedPhase assign_phase(prof, obs::Phase::kSchedulerAssign);
      scheduler_->assign(now_, active_);
    }
    obs::ScopedPhase alloc_phase(prof, obs::Phase::kAllocator);
    // Capped flows carry a stored rate below their pure allocation, so
    // the unchanged-component cache must not skip them: re-dirty their
    // links so the allocator re-reports them (allocation != stored rate),
    // exactly as the from-scratch oracle does every recomputation.
    for (const FlowId fid : capped_)
      alloc_.touch_flow(&state_.flows_[fid.value()]);
    capped_.clear();
    alloc_.allocate(capacities_, active_, &rate_changes_, prof);
    ++results_.rate_recomputations;
    // Only flows whose rate actually moved need settling and a new
    // calendar entry; everything else keeps draining on its old line.
    for (const RateChange& rc : rate_changes_) {
      SimFlow& f = *rc.flow;
      const Rate allocated = f.rate;  // the allocator's pure output
      Rate target = allocated;
      f.rate = rc.old_rate;  // restore: the flow drained at the old rate
      settle(f);
      // Straggler windows cap a touching flow at factor × allocation.
      // Unlike the TCP ramp the cap is constant while the window lasts,
      // so no refresh loop: straggler start/end marks dirty and forces
      // affected flows into this report (see apply_fault).
      if (have_faults_) {
        const double sf =
            std::min(straggler_[f.src_host], straggler_[f.dst_host]);
        if (sf < 1.0) target *= sf;
      }
      // TCP slow-start ramp: cap the flow at its window-growth rate. A
      // capped flow's allowance grows as it sends, so while any flow is
      // capped the engine refreshes rates at ramp-time granularity. A
      // flow whose allocation did not change cannot become newly capped:
      // the cap is non-decreasing in bytes sent, and its current rate
      // already satisfied the older, smaller cap.
      if (config_.tcp_ramp_time > 0) {
        const Rate cap = (config_.tcp_initial_window + f.bytes_sent()) /
                         config_.tcp_ramp_time;
        if (target > cap) {
          target = cap;
          any_ramp_capped = true;
        }
      }
      set_rate(f, target);
      push_key(f);
      if (target != allocated) capped_.push_back(f.id);
      ++results_.flow_touches;
      if (config_.trace &&
          config_.trace->wants(obs::TraceEventKind::kFlowRateChange)) {
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kFlowRateChange;
        r.time = now_;
        r.job = f.job.value();
        r.coflow =
            state_.jobs_[f.job.value()].coflows[f.coflow_index].value();
        r.flow = f.id.value();
        r.v0 = rc.old_rate;
        r.v1 = target;
        config_.trace->emit(r);
      }
    }
    dirty_ = false;
  }

  const int drain_prev =
      prof != nullptr ? prof->enter(obs::Phase::kCalendarDrain) : -1;
  // Next completion: discard stale calendar tops (their flow's rate
  // changed since the entry was pushed, or the flow already finished),
  // then the top key is the earliest projected finish.
  while (!calendar_.empty() &&
         calendar_.top().gen != gen_[calendar_.top().flow.value()]) {
    calendar_.pop();
    ++results_.flow_touches;
  }
  const Time t_complete = calendar_.empty()
                              ? std::numeric_limits<Time>::infinity()
                              : calendar_.top().key;
  const Time t_arrival =
      next_arrival_ < arrival_order_.size()
          ? state_.jobs_[arrival_order_[next_arrival_].value()].arrival_time
          : std::numeric_limits<Time>::infinity();
  const Time t_tick =
      tick_ > 0 ? next_tick_ : std::numeric_limits<Time>::infinity();
  const Time t_disruption = next_disruption_ < disruptions_.size()
                                ? disruptions_[next_disruption_].time
                                : std::numeric_limits<Time>::infinity();
  const Time t_fault = have_faults_ && next_fault_ < fault_events_.size()
                           ? fault_events_[next_fault_].time
                           : std::numeric_limits<Time>::infinity();
  const Time t_retry =
      have_faults_ ? next_retry_time() : std::numeric_limits<Time>::infinity();

  Time t_next = std::min(
      {t_complete, t_arrival, t_tick, t_disruption, t_fault, t_retry});
  if (any_ramp_capped) {
    // Refresh while ramping so capped flows pick up their grown windows.
    t_next = std::min(t_next, now_ + config_.tcp_ramp_time);
    dirty_ = true;
  }
  GURITA_CHECK_MSG(std::isfinite(t_next),
                   "simulation stalled: active flows but no next event");
  if (t_next >= horizon_) {
    // Horizon pause (run_to): the event's allocation (if any) already ran
    // at the unchanged clock — exactly where an uninterrupted run performs
    // it — so only the forward-looking bookkeeping must be undone. Roll
    // back the iteration accounting, remember the ramp-refresh mark and the
    // dirty entry state for the resumed execution, and bail out before the
    // clock advances.
    --iterations_;
    --results_.events;
    pending_ramp_ = any_ramp_capped;
    pending_was_dirty_ = pending_was_dirty_ || was_dirty;
    if (any_ramp_capped) dirty_ = false;  // pending_ramp_ replays the mark
    paused_at_horizon_ = true;
    return;
  }
  pending_ramp_ = false;
  GURITA_CHECK_MSG(t_next <= config_.max_time, "simulation exceeded max_time");
  t_next = std::max(t_next, now_);

  // What the pre-calendar engine would have scanned on this event: the
  // completion-time min search and the completion check always, the byte
  // drain when time advances, the ramp pass when enabled, and the
  // rebuild/assign pass when dirty — each a full active-set walk. An event
  // resumed after a horizon pause entered dirty on its first execution
  // (pending_was_dirty_), even though the resumed pass finds dirty_ clear.
  std::uint64_t legacy_scans = 2;
  if (was_dirty || pending_was_dirty_) ++legacy_scans;
  pending_was_dirty_ = false;
  if (config_.tcp_ramp_time > 0) ++legacy_scans;
  if (t_next > now_) ++legacy_scans;
  results_.legacy_flow_touches += legacy_scans * active_.size();

  // No per-flow drain sweep: every flow keeps draining linearly from its
  // (last_touched, rate) settle point; advancing the clock is O(1).
  now_ = t_next;
  state_.now_ = now_;
  apply_due_disruptions();
  // Faults and retries fire before completion processing: a flow whose
  // host dies at the very instant it would have finished is aborted (the
  // pop loop then discards its stale calendar entry). "Fault beats
  // completion" keeps the tie-break deterministic and pessimistic.
  if (have_faults_) {
    apply_due_faults();
    fire_due_retries();
  }

  // Completions (deterministic order: ascending flow id). A flow is done
  // when its residual bytes are negligible OR its residual transfer time
  // falls below the clock's floating-point resolution at `now_` — without
  // the second clause a nearly-drained flow whose remaining/rate is
  // smaller than one ulp of now_ would stall the clock forever. Calendar
  // keys are projected zero-drain times, so due entries form a prefix of
  // the heap order and the pop loop stops at the first entry still in the
  // future.
  const Time quantum = std::max(1.0, now_) * 1e-12;
  done_.clear();
  while (!calendar_.empty()) {
    const CalendarEntry top = calendar_.top();
    if (top.gen != gen_[top.flow.value()]) {
      calendar_.pop();
      ++results_.flow_touches;
      continue;
    }
    const SimFlow& f = state_.flows_[top.flow.value()];
    const Bytes rem = f.remaining_at(now_);
    if (!(rem <= kByteEpsilon || rem <= f.rate * quantum)) break;
    calendar_.pop();
    ++results_.flow_touches;
    done_.push_back(top.flow);
  }
  if (prof != nullptr) prof->leave(drain_prev);
  if (!done_.empty()) {
    obs::ScopedPhase completion_phase(prof, obs::Phase::kCompletion);
    std::sort(done_.begin(), done_.end());
    for (FlowId id : done_) {
      // A completion-tied fault may have aborted or cancelled the flow
      // after its entry was popped above; skip it (gen was bumped, but
      // the pop happened first).
      SimFlow& f = state_.flows_[id.value()];
      if (f.finished() || f.cancelled || f.abort_time >= 0) continue;
      finish_flow(f);
    }
    dirty_ = true;
  }

  // Arrivals due now.
  if (next_arrival_ < arrival_order_.size()) {
    obs::ScopedPhase arrival_phase(prof, obs::Phase::kArrival);
    while (next_arrival_ < arrival_order_.size()) {
      SimJob& j = state_.jobs_[arrival_order_[next_arrival_].value()];
      if (j.arrival_time > now_ + kTimeEpsilon) break;
      ++next_arrival_;
      arrive_job(j);
      dirty_ = true;
    }
  }

  // Coordination tick; only a changed priority forces a rate recompute.
  if (tick_ > 0 && now_ + kTimeEpsilon >= next_tick_) {
    obs::ScopedPhase tick_phase(prof, obs::Phase::kTick);
    if (scheduler_->on_tick(now_)) dirty_ = true;
    next_tick_ += tick_;
  }
}

void Simulator::poll_sampler() {
  obs::IntervalSampler& sampler = *config_.sampler;
  if (sampler.next_due() > now_) return;
  obs::ScopedPhase sample_phase(config_.profiler, obs::Phase::kSampling);

  // Every field below is a pure function of (serialized state, now_):
  // counters from results_, logical container sizes and live-entity counts
  // — identical across worker counts and checkpoint/restore splits.
  obs::IntervalSampler::SimSample sim;
  sim.events = results_.events;
  sim.flow_touches = results_.flow_touches;
  sim.rate_recomputations = results_.rate_recomputations;
  sim.active_flows = active_.size();
  for (const SimCoflow& c : state_.coflows_)
    if (c.released() && !c.finished()) ++sim.active_coflows;
  for (const SimJob& j : state_.jobs_)
    if (j.arrival_time <= now_ + kTimeEpsilon && !j.finished())
      ++sim.active_jobs;
  sim.calendar_entries = calendar_.size();
  sim.trace_records = config_.trace->records().size();

  obs::IntervalSampler::MemSample mem;
  mem.state_bytes = state_.flows_.size() * sizeof(SimFlow) +
                    state_.coflows_.size() * sizeof(SimCoflow) +
                    state_.jobs_.size() * sizeof(SimJob) +
                    state_.aggregates_.size() *
                        sizeof(SimState::CoflowAggregate);
  mem.calendar_bytes = calendar_.size() * sizeof(CalendarEntry);
  mem.retry_bytes = retries_.size() * sizeof(RetryEntry) +
                    parked_.size() * sizeof(FlowId);
  mem.active_set_bytes = active_.size() * sizeof(SimFlow*) +
                         pos_in_active_.size() * sizeof(std::uint32_t) +
                         gen_.size() * sizeof(std::uint32_t);

  // The clock can jump several boundaries in one event (idle gaps); each
  // gets its own sample, stamped at its grid time. Trace size moves as
  // samples are emitted, so it is refreshed per boundary.
  while (sampler.next_due() <= now_) {
    mem.trace_bytes =
        config_.trace->records().size() * sizeof(obs::TraceRecord);
    sim.trace_records = config_.trace->records().size();
    sampler.emit(*config_.trace, sim, mem);
  }
  if (config_.memory != nullptr) account_memory();
}

void Simulator::account_memory() {
  obs::MemoryAccountant& acct = *config_.memory;
  using S = obs::MemoryAccountant::Subsystem;

  std::size_t state_bytes =
      state_.flows_.capacity() * sizeof(SimFlow) +
      state_.coflows_.capacity() * sizeof(SimCoflow) +
      state_.jobs_.capacity() * sizeof(SimJob) +
      state_.aggregates_.capacity() * sizeof(SimState::CoflowAggregate);
  for (const SimFlow& f : state_.flows_)
    state_bytes += f.path.capacity() * sizeof(LinkId);
  for (const SimCoflow& c : state_.coflows_)
    state_bytes += c.flows.capacity() * sizeof(FlowId);
  acct.observe(S::kState, state_bytes);

  acct.observe(S::kCalendar,
               calendar_.container().capacity() * sizeof(CalendarEntry));
  acct.observe(S::kAllocator, alloc_.memory_bytes());
  acct.observe(S::kTrace,
               config_.trace != nullptr
                   ? config_.trace->records().capacity() *
                         sizeof(obs::TraceRecord)
                   : 0);
  acct.observe(S::kActiveSet,
               active_.capacity() * sizeof(SimFlow*) +
                   pos_in_active_.capacity() * sizeof(std::uint32_t) +
                   gen_.capacity() * sizeof(std::uint32_t) +
                   done_.capacity() * sizeof(FlowId) +
                   capped_.capacity() * sizeof(FlowId) +
                   rate_changes_.capacity() * sizeof(RateChange));
  acct.observe(S::kFaultRuntime,
               fault_events_.capacity() * sizeof(FaultEvent) +
                   host_down_.capacity() + link_down_.capacity() +
                   straggler_.capacity() * sizeof(double) +
                   saved_capacity_.capacity() * sizeof(Rate) +
                   parked_.capacity() * sizeof(FlowId) +
                   retries_.container().capacity() * sizeof(RetryEntry));
}

SimResults Simulator::collect() {
  GURITA_CHECK_MSG(prepared_ && !collected_, "collect before the run drained");
  collected_ = true;
  if (config_.memory != nullptr) account_memory();
  obs::PhaseProfiler* prof = config_.profiler;
  const int results_prev =
      prof != nullptr ? prof->enter(obs::Phase::kResults) : -1;
  results_.makespan = now_;
  results_.jobs.reserve(state_.jobs_.size());
  for (const SimJob& j : state_.jobs_) {
    // Failed jobs set finish_time at abandonment, so every job has a
    // terminal timestamp here either way.
    GURITA_CHECK_MSG(j.finished(), "job left unfinished at end of run");
    SimResults::JobResult jr{j.id, j.arrival_time, j.finish_time,
                             j.total_bytes, j.num_stages};
    jr.failed = j.failed;
    results_.jobs.push_back(jr);
  }
  results_.coflows.reserve(state_.coflows_.size());
  for (const SimCoflow& c : state_.coflows_) {
    SimResults::CoflowResult cr{c.id,          c.job,
                                c.stage,       c.release_time,
                                c.finish_time, state_.coflow_total_bytes(c.id)};
    cr.failed = state_.jobs_[c.job.value()].failed && !c.finished();
    results_.coflows.push_back(cr);
  }
  live_results_ = nullptr;
  if (prof != nullptr) {
    prof->leave(results_prev);
    prof->end_run();
  }
  return std::move(results_);
}

SimResults Simulator::run() {
  prepare();
  while (pending()) step();
  return collect();
}

bool Simulator::run_until(Time deadline) {
  if (!prepared_) prepare();
  GURITA_CHECK_MSG(!collected_, "run_until after results were collected");
  while (pending() && now_ < deadline) step();
  return pending();
}

SimResults Simulator::finish() {
  GURITA_CHECK_MSG(prepared_, "finish() before run_until()/restore()");
  while (pending()) step();
  return collect();
}

// --- open-horizon extension (streaming admission; DESIGN.md §15) -------------

bool Simulator::run_to(Time bound) {
  if (!prepared_) prepare();
  GURITA_CHECK_MSG(!collected_, "run_to after results were collected");
  horizon_ = bound;
  paused_at_horizon_ = false;
  while (pending() && !paused_at_horizon_) step();
  horizon_ = std::numeric_limits<Time>::infinity();
  paused_at_horizon_ = false;
  return pending();
}

JobId Simulator::admit(const JobSpec& spec) {
  GURITA_CHECK_MSG(prepared_ && !collected_,
                   "admit() outside an open run (prepare/restore first)");
  validate(spec, fabric_->num_hosts());

  std::size_t spec_flows = 0;
  for (const CoflowSpec& c : spec.coflows) spec_flows += c.flows.size();
  flows_reserved_ += spec_flows;
  if (flows_reserved_ > state_.flows_.capacity()) grow_flow_store();
  pos_in_active_.reserve(flows_reserved_);
  gen_.reserve(flows_reserved_);

  const JobId jid = register_job(spec);

  // Keep the unconsumed suffix of the arrival order sorted by
  // (arrival_time, id) — the invariant prepare_structures establishes. The
  // new id is the largest, so among equal arrival times it goes last.
  const Time at = state_.jobs_[jid.value()].arrival_time;
  const auto begin = arrival_order_.begin() +
                     static_cast<std::ptrdiff_t>(next_arrival_);
  const auto pos = std::lower_bound(
      begin, arrival_order_.end(), at, [this](JobId a, Time t) {
        return state_.jobs_[a.value()].arrival_time <= t;
      });
  arrival_order_.insert(pos, jid);
  return jid;
}

void Simulator::grow_flow_store() {
  // Reallocation moves every SimFlow, so raw pointers into the store (the
  // active set, the allocator's membership lists) must be re-seeded. The
  // rebuild is a pure re-solve: the next allocation recomputes every
  // component from the same stored rates and reports exactly the changes
  // the incremental path would have — byte-identical results (the same
  // argument that makes restore() exact).
  std::vector<FlowId> active_ids;
  active_ids.reserve(active_.size());
  for (const SimFlow* f : active_) active_ids.push_back(f->id);
  const std::size_t target =
      std::max(flows_reserved_, 2 * state_.flows_.capacity());
  state_.flows_.reserve(target);
  for (std::size_t i = 0; i < active_ids.size(); ++i)
    active_[i] = &state_.flows_[active_ids[i].value()];
  alloc_.rebuild(active_);
}

Simulator::Compaction Simulator::compact() {
  GURITA_CHECK_MSG(prepared_ && !collected_,
                   "compact() outside an open run");
  Compaction out;
  CompactionRemap remap;

  // Survivors: every job not yet terminal. Terminal (finished or failed)
  // jobs have no active, parked or retrying flows left, so eviction never
  // touches live engine state. Renumbering is monotone (stable compaction).
  remap.job_map.assign(state_.jobs_.size(), CompactionRemap::kEvicted);
  std::uint64_t next_job = 0;
  for (const SimJob& j : state_.jobs_)
    if (!j.finished()) remap.job_map[j.id.value()] = next_job++;
  out.jobs_evicted = state_.jobs_.size() - next_job;
  if (out.jobs_evicted == 0) return out;  // nothing to do

  remap.coflow_map.assign(state_.coflows_.size(), CompactionRemap::kEvicted);
  std::uint64_t next_coflow = 0;
  for (const SimCoflow& c : state_.coflows_)
    if (remap.job_map[c.job.value()] != CompactionRemap::kEvicted)
      remap.coflow_map[c.id.value()] = next_coflow++;
  out.coflows_evicted = state_.coflows_.size() - next_coflow;

  remap.flow_map.assign(state_.flows_.size(), CompactionRemap::kEvicted);
  std::uint64_t next_flow = 0;
  for (const SimFlow& f : state_.flows_)
    if (remap.job_map[f.job.value()] != CompactionRemap::kEvicted)
      remap.flow_map[f.id.value()] = next_flow++;
  out.flows_evicted = state_.flows_.size() - next_flow;

  // Harvest the evicted results exactly as collect() reports them, before
  // the stores move (coflow_total_bytes reads the owning job's spec).
  out.jobs.reserve(out.jobs_evicted);
  for (const SimJob& j : state_.jobs_) {
    if (remap.job_map[j.id.value()] != CompactionRemap::kEvicted) continue;
    SimResults::JobResult jr{j.id, j.arrival_time, j.finish_time,
                             j.total_bytes, j.num_stages};
    jr.failed = j.failed;
    out.jobs.push_back(jr);
  }
  out.coflows.reserve(out.coflows_evicted);
  for (const SimCoflow& c : state_.coflows_) {
    if (remap.coflow_map[c.id.value()] != CompactionRemap::kEvicted) continue;
    SimResults::CoflowResult cr{c.id,          c.job,
                                c.stage,       c.release_time,
                                c.finish_time, state_.coflow_total_bytes(c.id)};
    cr.failed = state_.jobs_[c.job.value()].failed && !c.finished();
    out.coflows.push_back(cr);
  }

  // Flows: stable in-place compaction; pos/gen stay parallel. Active flows
  // all belong to surviving jobs, so none is evicted.
  std::vector<FlowId> active_ids;
  active_ids.reserve(active_.size());
  for (const SimFlow* f : active_) active_ids.push_back(f->id);
  std::size_t w = 0;
  for (std::size_t i = 0; i < state_.flows_.size(); ++i) {
    if (remap.flow_map[i] == CompactionRemap::kEvicted) continue;
    if (w != i) {
      state_.flows_[w] = std::move(state_.flows_[i]);
      pos_in_active_[w] = pos_in_active_[i];
      gen_[w] = gen_[i];
    }
    SimFlow& f = state_.flows_[w];
    f.id = FlowId{w};
    f.job = JobId{remap.job_map[f.job.value()]};
    ++w;
  }
  state_.flows_.resize(w);
  pos_in_active_.resize(w);
  gen_.resize(w);

  // Coflows + aggregates (parallel arrays).
  w = 0;
  for (std::size_t i = 0; i < state_.coflows_.size(); ++i) {
    if (remap.coflow_map[i] == CompactionRemap::kEvicted) continue;
    if (w != i) {
      state_.coflows_[w] = std::move(state_.coflows_[i]);
      state_.aggregates_[w] = state_.aggregates_[i];
    }
    SimCoflow& c = state_.coflows_[w];
    c.id = CoflowId{w};
    c.job = JobId{remap.job_map[c.job.value()]};
    for (FlowId& fid : c.flows) fid = FlowId{remap.flow_map[fid.value()]};
    ++w;
  }
  state_.coflows_.resize(w);
  state_.aggregates_.resize(w);

  // Jobs (specs are retained — snapshots resubmit them on recovery).
  w = 0;
  for (std::size_t i = 0; i < state_.jobs_.size(); ++i) {
    if (remap.job_map[i] == CompactionRemap::kEvicted) continue;
    if (w != i) state_.jobs_[w] = std::move(state_.jobs_[i]);
    SimJob& j = state_.jobs_[w];
    j.id = JobId{w};
    for (CoflowId& cid : j.coflows)
      cid = CoflowId{remap.coflow_map[cid.value()]};
    ++w;
  }
  state_.jobs_.resize(w);

  // Flow-store reservation: released survivors plus the unreleased flows
  // of surviving jobs. Shrink the heavyweight stores once their capacity
  // dwarfs what steady state needs — the trigger and target are pure
  // functions of logical sizes, so reserved footprint stays deterministic.
  flows_reserved_ = state_.flows_.size();
  for (const SimJob& j : state_.jobs_)
    for (CoflowId cid : j.coflows) {
      const SimCoflow& c = state_.coflows_[cid.value()];
      if (!c.released())
        flows_reserved_ += j.spec.coflows[c.index].flows.size();
    }
  const auto shrink = [](auto& v, std::size_t need) {
    using V = std::remove_reference_t<decltype(v)>;
    const std::size_t floor = std::max<std::size_t>(need, 64);
    if (v.capacity() <= 4 * floor) return;
    V tmp;
    tmp.reserve(2 * floor);
    for (auto& e : v) tmp.push_back(std::move(e));
    v = std::move(tmp);
  };
  shrink(state_.flows_, flows_reserved_);
  shrink(state_.coflows_, state_.coflows_.size());
  shrink(state_.aggregates_, state_.aggregates_.size());
  shrink(state_.jobs_, state_.jobs_.size());
  shrink(pos_in_active_, flows_reserved_);
  shrink(gen_, flows_reserved_);

  // Re-point the active set (same order) at the moved flows.
  for (std::size_t i = 0; i < active_ids.size(); ++i)
    active_[i] =
        &state_.flows_[remap.flow_map[active_ids[i].value()]];

  // Calendar: drop entries of evicted flows (all stale — their flows
  // finished, which bumped gen), remap the rest and re-heapify. Stale
  // entries of *surviving* flows are kept so their eventual pops count
  // flow_touches exactly as without compaction. Equal-key layout changes
  // cannot affect results: every due entry pops regardless of order and
  // completions are processed in sorted flow-id order.
  std::vector<CalendarEntry> cal = calendar_.take_container();
  w = 0;
  for (CalendarEntry& e : cal) {
    const std::uint64_t nf = remap.flow_map[e.flow.value()];
    if (nf == CompactionRemap::kEvicted) continue;
    e.flow = FlowId{nf};
    cal[w++] = e;
  }
  cal.resize(w);
  shrink(cal, cal.size());
  std::make_heap(cal.begin(), cal.end(), CalendarLater{});
  calendar_.restore(std::move(cal));

  // Retry heap and parking lot: entries of evicted (cancelled) flows drop,
  // survivors remap; parked keeps its order.
  if (have_faults_ || !retries_.empty() || !parked_.empty()) {
    std::vector<RetryEntry> rt = retries_.take_container();
    w = 0;
    for (RetryEntry& e : rt) {
      const std::uint64_t nf = remap.flow_map[e.flow.value()];
      if (nf == CompactionRemap::kEvicted) continue;
      e.flow = FlowId{nf};
      rt[w++] = e;
    }
    rt.resize(w);
    std::make_heap(rt.begin(), rt.end(), RetryLater{});
    retries_.restore(std::move(rt));

    w = 0;
    for (const FlowId fid : parked_) {
      const std::uint64_t nf = remap.flow_map[fid.value()];
      if (nf == CompactionRemap::kEvicted) continue;
      parked_[w++] = FlowId{nf};
    }
    parked_.resize(w);
  }

  // Capped flows (stored rate below pure allocation): finished ones drop,
  // survivors remap. done_ is per-event scratch; clear defensively.
  w = 0;
  for (const FlowId fid : capped_) {
    const std::uint64_t nf = remap.flow_map[fid.value()];
    if (nf == CompactionRemap::kEvicted) continue;
    capped_[w++] = FlowId{nf};
  }
  capped_.resize(w);
  done_.clear();

  // Arrival cursor: every evicted job had arrived (it finished), so the
  // consumed prefix shrinks by exactly the eviction count. Monotone
  // renumbering keeps the filtered order sorted by (arrival_time, id) —
  // the same order a restore-side recomputation produces.
  w = 0;
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < arrival_order_.size(); ++i) {
    const std::uint64_t nj = remap.job_map[arrival_order_[i].value()];
    if (nj == CompactionRemap::kEvicted) continue;
    if (i < next_arrival_) ++consumed;
    arrival_order_[w++] = JobId{nj};
  }
  arrival_order_.resize(w);
  next_arrival_ = consumed;

  // The allocator holds raw flow pointers and id-indexed arrays: re-seed
  // it from the compacted active set. Pure re-solve, identical rates.
  alloc_.rebuild(active_);
  scheduler_->on_compact(remap);

  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kCompact)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kCompact;
    r.time = now_;
    r.i0 = static_cast<std::int32_t>(out.jobs_evicted);
    r.i1 = static_cast<std::int32_t>(out.coflows_evicted);
    r.i2 = static_cast<std::int32_t>(out.flows_evicted);
    r.v0 = static_cast<double>(state_.jobs_.size());
    tr->emit(r);
  }
  return out;
}

// --- fault injection (fault/fault.h, DESIGN.md §11) -------------------------

bool Simulator::flow_blocked(const SimFlow& flow) const {
  if (host_down_[flow.src_host] || host_down_[flow.dst_host]) return true;
  for (LinkId l : flow.path)
    if (link_down_[l.value()]) return true;
  return false;
}

Time Simulator::next_retry_time() const {
  // The top entry may belong to a cancelled flow; fire_due_retries pops and
  // skips those, so using its time here costs at most a no-op wakeup.
  return retries_.empty() ? std::numeric_limits<Time>::infinity()
                          : retries_.top().time;
}

void Simulator::abort_flow(SimFlow& flow, FaultKind cause,
                           bool count_attempt) {
  settle(flow);
  set_rate(flow, 0.0);
  const Bytes sent = flow.size - flow.remaining;
  SimState::CoflowAggregate& agg = aggregate_of(flow);
  // In-flight bytes are destroyed: roll the coflow's delivered-byte
  // aggregate back and rewind the flow to byte zero for its retry.
  agg.base_bytes -= sent;
  flow.remaining = flow.size;
  flow.lost_bytes += sent;
  live_results_->bytes_lost += sent;
  --agg.open_connections;
  ++gen_[flow.id.value()];  // invalidate any pending calendar entry
  remove_from_active(flow);
  if (count_attempt) ++flow.attempts;
  flow.abort_time = now_;
  ++live_results_->flow_aborts;
  ++live_results_->flow_touches;
  dirty_ = true;
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kFlowAbort)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kFlowAbort;
    r.time = now_;
    r.job = flow.job.value();
    r.coflow =
        state_.jobs_[flow.job.value()].coflows[flow.coflow_index].value();
    r.flow = flow.id.value();
    r.v0 = sent;
    r.i0 = flow.attempts;
    r.i1 = static_cast<std::int32_t>(cause);
    tr->emit(r);
  }
  if (flow.attempts >= config_.faults.retry.max_attempts) {
    // Retry budget exhausted: the whole job is abandoned. This flow was
    // never parked, so mark it cancelled before fail_job — it must not be
    // counted as outstanding.
    flow.cancelled = true;
    flow.abort_time = -1;
    fail_job(state_.jobs_[flow.job.value()]);
  } else {
    parked_.push_back(flow.id);
    ++outstanding_;
  }
}

void Simulator::fail_job(SimJob& job) {
  GURITA_CHECK_MSG(!job.finished(), "fail_job on a finished job");
  std::int32_t cancelled_coflows = 0;
  std::int32_t cancelled_running = 0;
  std::int32_t cancelled_parked = 0;
  for (CoflowId cid : job.coflows) {
    SimCoflow& c = state_.coflows_[cid.value()];
    if (c.released() && !c.finished()) ++cancelled_coflows;
    for (FlowId fid : c.flows) {
      SimFlow& f = state_.flows_[fid.value()];
      if (f.finished() || f.cancelled) continue;
      if (f.abort_time >= 0) {
        // Parked, or waiting out its retry backoff.
        f.cancelled = true;
        f.abort_time = -1;
        --outstanding_;
        ++cancelled_parked;
      } else {
        // Transmitting: destroy the in-flight bytes and remove it.
        settle(f);
        set_rate(f, 0.0);
        const Bytes sent = f.size - f.remaining;
        SimState::CoflowAggregate& agg = aggregate_of(f);
        agg.base_bytes -= sent;
        f.remaining = f.size;
        f.lost_bytes += sent;
        live_results_->bytes_lost += sent;
        --agg.open_connections;
        ++gen_[fid.value()];
        remove_from_active(f);
        f.cancelled = true;
        ++cancelled_running;
        ++live_results_->flow_touches;
        dirty_ = true;
      }
    }
  }
  job.failed = true;
  job.finish_time = now_;
  ++live_results_->failed_jobs;
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kJobFail)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kJobFail;
    r.time = now_;
    r.job = job.id.value();
    r.i0 = cancelled_coflows;
    r.i1 = cancelled_running;
    r.i2 = cancelled_parked;
    r.v0 = job.arrival_time;
    tr->emit(r);
  }
  scheduler_->on_job_fail(job, now_);
}

void Simulator::schedule_retry(SimFlow& flow) {
  const Time d = config_.faults.retry.delay(flow.attempts, config_.faults.seed,
                                            flow.id.value());
  retries_.push(RetryEntry{now_ + d, flow.id});
}

void Simulator::reconsider_parked() {
  std::size_t w = 0;
  for (FlowId fid : parked_) {
    SimFlow& f = state_.flows_[fid.value()];
    if (f.cancelled) continue;  // dropped when its job failed
    if (flow_blocked(f)) {
      parked_[w++] = fid;  // some other blocker is still down
      continue;
    }
    schedule_retry(f);
  }
  parked_.resize(w);
}

void Simulator::fire_due_retries() {
  if (retries_.empty() || retries_.top().time > now_ + kTimeEpsilon) return;
  obs::ScopedPhase phase(config_.profiler, obs::Phase::kFault);
  while (!retries_.empty() && retries_.top().time <= now_ + kTimeEpsilon) {
    const RetryEntry e = retries_.top();
    retries_.pop();
    SimFlow& f = state_.flows_[e.flow.value()];
    if (f.cancelled) continue;  // its job failed while the timer ran
    if (flow_blocked(f)) {
      // Something on its path went down again during the backoff: back to
      // the parking lot until the next recovery.
      parked_.push_back(e.flow);
      continue;
    }
    // Restart from byte zero (abort_flow already rewound the byte state).
    const Time latency = now_ - f.abort_time;
    live_results_->total_recovery_latency += latency;
    f.abort_time = -1;
    f.last_touched = now_;
    SimState::CoflowAggregate& agg = aggregate_of(f);
    ++agg.open_connections;
    pos_in_active_[f.id.value()] = static_cast<std::uint32_t>(active_.size());
    active_.push_back(&f);
    alloc_.add_flow(&f);
    push_key(f);
    --outstanding_;
    ++live_results_->flow_retries;
    ++live_results_->flow_touches;
    dirty_ = true;
    obs::TraceRecorder* tr = config_.trace;
    if (tr && tr->wants(obs::TraceEventKind::kFlowRetry)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kFlowRetry;
      r.time = now_;
      r.job = f.job.value();
      r.coflow = state_.jobs_[f.job.value()].coflows[f.coflow_index].value();
      r.flow = f.id.value();
      r.i0 = f.attempts;
      r.v0 = latency;
      tr->emit(r);
    }
  }
}

void Simulator::apply_due_faults() {
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].time <= now_ + kTimeEpsilon)
    apply_fault(fault_events_[next_fault_++]);
}

void Simulator::apply_fault(const FaultEvent& event) {
  obs::ScopedPhase phase(config_.profiler, obs::Phase::kFault);
  obs::TraceRecorder* tr = config_.trace;
  if (tr && tr->wants(obs::TraceEventKind::kFault)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kFault;
    r.time = now_;
    r.i0 = static_cast<std::int32_t>(event.kind);
    r.i1 = event.host;
    r.i2 = event.link.valid() ? static_cast<std::int32_t>(event.link.value())
                              : -1;
    r.v0 = event.factor;
    tr->emit(r);
  }
  // Aborts run in ascending flow-id order (active_ order is arbitrary), and
  // skip flows a nested fail_job already tore down.
  std::vector<FlowId> affected;
  const auto abort_affected = [&] {
    std::sort(affected.begin(), affected.end());
    for (FlowId fid : affected) {
      SimFlow& f = state_.flows_[fid.value()];
      if (f.finished() || f.cancelled || f.abort_time >= 0) continue;
      abort_flow(f, event.kind, /*count_attempt=*/true);
    }
  };
  switch (event.kind) {
    case FaultKind::kHostDown: {
      host_down_[event.host] = 1;
      for (const SimFlow* f : active_)
        if (f->src_host == event.host || f->dst_host == event.host)
          affected.push_back(f->id);
      abort_affected();
      break;
    }
    case FaultKind::kLinkDown: {
      const std::size_t l = event.link.value();
      link_down_[l] = 1;
      saved_capacity_[l] = capacities_[l];
      capacities_[l] = 0.0;
      alloc_.dirty_link(event.link);
      for (const SimFlow* f : active_) {
        for (LinkId pl : f->path) {
          if (pl.value() == l) {
            affected.push_back(f->id);
            break;
          }
        }
      }
      abort_affected();
      break;
    }
    case FaultKind::kHostUp:
      host_down_[event.host] = 0;
      break;
    case FaultKind::kLinkUp: {
      const std::size_t l = event.link.value();
      link_down_[l] = 0;
      capacities_[l] = saved_capacity_[l];
      alloc_.dirty_link(event.link);
      break;
    }
    case FaultKind::kStragglerStart: {
      straggler_[event.host] = event.factor;
      // Force every touching flow into the next rate-change report by
      // capping its stored rate now. The reallocation this marks dirty runs
      // at this same timestamp, so no bytes drain at the temporary value —
      // but without this, a flow whose max-min allocation happens to be
      // unchanged would never enter rate_changes_ and would dodge the cap.
      for (const SimFlow* f : active_)
        if (f->src_host == event.host || f->dst_host == event.host)
          affected.push_back(f->id);
      std::sort(affected.begin(), affected.end());
      for (FlowId fid : affected) {
        SimFlow& f = state_.flows_[fid.value()];
        settle(f);
        set_rate(f, f.rate * event.factor);
        push_key(f);
        // The cap bypassed the allocator (no rate_changes_ entry), so the
        // stored rate now disagrees with the cached allocation: dirty the
        // flow's links or the next recomputation would never re-report it.
        alloc_.touch_flow(&f);
        ++live_results_->flow_touches;
      }
      break;
    }
    case FaultKind::kStragglerEnd:
      straggler_[event.host] = 1.0;
      break;
    case FaultKind::kSchedulerStateLoss:
      break;
  }
  if (is_recovery(event.kind)) {
    scheduler_->on_recover(event, now_);
    reconsider_parked();
  } else {
    scheduler_->on_fault(event, now_);
  }
  dirty_ = true;
}

void Simulator::fail_stranded_jobs() {
  obs::ScopedPhase phase(config_.profiler, obs::Phase::kFault);
  std::vector<JobId> stranded;
  for (FlowId fid : parked_) {
    const SimFlow& f = state_.flows_[fid.value()];
    if (!f.cancelled) stranded.push_back(f.job);
  }
  std::sort(stranded.begin(), stranded.end());
  stranded.erase(std::unique(stranded.begin(), stranded.end()),
                 stranded.end());
  for (JobId jid : stranded) fail_job(state_.jobs_[jid.value()]);
  parked_.clear();
  GURITA_CHECK_MSG(outstanding_ == 0,
                   "stranded flows survived fail_stranded_jobs");
}

}  // namespace gurita
