#include "flowsim/state.h"

#include <algorithm>

namespace gurita {

Bytes SimState::coflow_bytes_sent(CoflowId id) const {
  GURITA_CHECK_MSG(id.value() < aggregates_.size(), "coflow id out of range");
  const CoflowAggregate& a = aggregates_[id.value()];
  // Linear form of the incremental aggregate; exact at now_ because every
  // flow's rate is constant between boundaries (see CoflowAggregate).
  const Bytes sent = a.base_bytes + a.rate_sum * now_ - a.rate_time_sum;
  return sent > 0 ? sent : 0.0;
}

Bytes SimState::coflow_total_bytes(CoflowId id) const {
  const SimCoflow& c = coflow(id);
  const SimJob& j = job(c.job);
  return j.spec.coflows[c.index].total_bytes();
}

Bytes SimState::coflow_ell_max(CoflowId id) const {
  const SimCoflow& c = coflow(id);
  // Finished flows are covered by the settled running max; the upper
  // envelope over still-draining flows is not decomposable into a running
  // scalar, so those are extrapolated individually.
  Bytes ell_max = aggregates_[id.value()].ell_max_settled;
  for (FlowId fid : c.flows) {
    const SimFlow& f = flows_[fid.value()];
    if (!f.finished()) ell_max = std::max(ell_max, f.bytes_sent_at(now_));
  }
  return ell_max;
}

Bytes SimState::job_stage_bytes_sent(JobId id, int stage) const {
  const SimJob& j = job(id);
  Bytes sent = 0;
  for (std::size_t i = 0; i < j.coflows.size(); ++i) {
    if (j.stage_of[i] != stage) continue;
    const SimCoflow& c = coflow(j.coflows[i]);
    if (!c.released()) continue;
    sent += coflow_bytes_sent(c.id);
  }
  return sent;
}

Bytes SimState::job_bytes_sent(JobId id) const {
  const SimJob& j = job(id);
  Bytes sent = 0;
  for (CoflowId cid : j.coflows) {
    if (coflow(cid).released()) sent += coflow_bytes_sent(cid);
  }
  return sent;
}

int SimState::coflow_open_connections(CoflowId id) const {
  GURITA_CHECK_MSG(id.value() < aggregates_.size(), "coflow id out of range");
  return aggregates_[id.value()].open_connections;
}

}  // namespace gurita
