// Scheduler policy interface.
//
// The engine owns mechanism (events, DAG release, rate allocation); a
// Scheduler owns policy: it observes simulation events and, whenever rates
// must be recomputed, assigns each active flow a (tier, weight) pair that
// the tiered weighted max-min allocator turns into rates (allocator.h).
//
// Decentralized schemes must restrict themselves to information a receiver
// could observe locally (bytes received, open connections) refreshed at
// their tick interval; centralized schemes (Aalo, GuritaPlus) may read the
// full SimState instantaneously — mirroring the paper's simulation setup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "fault/fault.h"
#include "flowsim/state.h"
#include "obs/trace.h"
#include "snapshot/codec.h"

namespace gurita {

/// Id renumbering produced by Simulator::compact() (open-horizon state
/// eviction, DESIGN.md §15): terminal jobs leave the stores and every
/// surviving entity is renumbered densely. Each map is indexed by the OLD
/// id value and holds the NEW id value, or kEvicted for entities that left.
/// Renumbering is monotone: surviving ids keep their relative order, so
/// sorted-key serialization stays sorted after remapping.
struct CompactionRemap {
  static constexpr std::uint64_t kEvicted = ~0ull;
  std::vector<std::uint64_t> job_map;
  std::vector<std::uint64_t> coflow_map;
  std::vector<std::uint64_t> flow_map;

  [[nodiscard]] bool job_evicted(JobId id) const {
    return job_map[id.value()] == kEvicted;
  }
  [[nodiscard]] bool coflow_evicted(CoflowId id) const {
    return coflow_map[id.value()] == kEvicted;
  }
};

/// Rebuilds an id-keyed policy table across a compaction: drops entries
/// whose key maps to CompactionRemap::kEvicted and re-keys the survivors.
/// `id_map` must be the remap table matching the map's key family
/// (job_map for JobId keys, coflow_map for CoflowId keys). Works for both
/// ordered and unordered maps; monotone renumbering keeps ordered maps
/// sorted without re-comparison surprises.
template <typename Map>
void remap_table(Map& table, const std::vector<std::uint64_t>& id_map) {
  using Key = typename Map::key_type;
  Map out;
  for (auto& [key, value] : table) {
    const std::uint64_t to = id_map[key.value()];
    if (to == CompactionRemap::kEvicted) continue;
    out.emplace(Key{to}, std::move(value));
  }
  table = std::move(out);
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the run; `state` outlives the scheduler's use.
  virtual void attach(const SimState& state) { state_ = &state; }

  virtual void on_job_arrival(const SimJob& job, Time now) {
    (void)job;
    (void)now;
  }
  /// A coflow's dependencies completed; its flows just started.
  virtual void on_coflow_release(const SimCoflow& coflow, Time now) {
    (void)coflow;
    (void)now;
  }
  virtual void on_flow_finish(const SimFlow& flow, Time now) {
    (void)flow;
    (void)now;
  }
  virtual void on_coflow_finish(const SimCoflow& coflow, Time now) {
    (void)coflow;
    (void)now;
  }
  virtual void on_job_finish(const SimJob& job, Time now) {
    (void)job;
    (void)now;
  }

  // --- fault-injection extension (fault/fault.h, DESIGN.md §11) ---

  /// A fault struck (a non-recovery FaultKind). Delivered after the engine
  /// has aborted the affected flows, so state() already reflects the damage.
  /// The contract for kSchedulerStateLoss: drop every piece of learned
  /// control state (priority tables, history estimators) and rebuild from
  /// what a freshly restarted scheduler could re-derive by observing the
  /// live population — typically re-admitting every released unfinished
  /// coflow at the highest-priority level. The default ignores faults,
  /// which is correct only for stateless policies.
  virtual void on_fault(const FaultEvent& event, Time now) {
    (void)event;
    (void)now;
  }
  /// A recovery fired (kHostUp / kLinkUp / kStragglerEnd). Delivered before
  /// the engine re-schedules parked flows.
  virtual void on_recover(const FaultEvent& event, Time now) {
    (void)event;
    (void)now;
  }
  /// A job exhausted its retry budget (or a needed recovery never comes)
  /// and was marked failed; its surviving flows were cancelled. Schedulers
  /// holding per-job or per-coflow entries must drop them here — the job
  /// never reaches on_job_finish.
  virtual void on_job_fail(const SimJob& job, Time now) {
    (void)job;
    (void)now;
  }

  /// The engine compacted its stores (Simulator::compact()): terminal jobs
  /// were evicted and every surviving job/coflow/flow id was renumbered per
  /// `remap`. Schedulers holding id-keyed state must drop entries whose key
  /// maps to CompactionRemap::kEvicted and re-key the survivors. Delivered
  /// at an event boundary; state() already reflects the new numbering. The
  /// default ignores it, which is correct only for stateless policies.
  virtual void on_compact(const CompactionRemap& remap) { (void)remap; }

  /// Periodic coordination interval (δ). 0 disables ticks. For Gurita this
  /// is the head-receiver update period; information the scheduler uses in
  /// assign() should be refreshed here, not read fresh, to model staleness.
  [[nodiscard]] virtual Time tick_interval() const { return 0; }

  /// Returns true if the tick changed any priority assignment — only then
  /// does the engine recompute rates, so no-op ticks stay cheap.
  virtual bool on_tick(Time now) {
    (void)now;
    return false;
  }

  /// Sets `tier` and `weight` on every active flow. Called by the engine
  /// immediately before each rate recomputation. `active` is the engine's
  /// persistent active list (arrival order modulo swap-with-last removals);
  /// schedulers must not rely on its order and cannot reorder it.
  virtual void assign(Time now, const std::vector<SimFlow*>& active) = 0;

  // --- checkpoint/restore extension (snapshot/, DESIGN.md §12) ---

  /// Serializes every piece of mutable policy state into `w`. The engine's
  /// checkpoint embeds these bytes in a length-prefixed section, so a
  /// scheduler may write nothing (the default, correct only for stateless
  /// policies) or any self-describing payload. Determinism contract: the
  /// bytes must be a pure function of the scheduler's logical state —
  /// serialize unordered containers in sorted key order, never by bucket
  /// iteration, so that checkpoint(checkpoint(restore(x))) == x.
  virtual void save_state(snapshot::Writer& w) const { (void)w; }

  /// Inverse of save_state. Called after attach() on a freshly constructed
  /// scheduler (same config as the checkpointed one); must leave the policy
  /// in a state whose future decisions are byte-identical to the original's.
  virtual void load_state(snapshot::Reader& r) { (void)r; }

  /// Attaches a structured trace sink (obs/trace.h) for decision records —
  /// queue transitions with their Ψ̈ factor breakdown, WRR weight snapshots,
  /// heavy-job marks. The engine wires this automatically when its own
  /// Config::trace is set; tests driving a scheduler through another engine
  /// (the differential oracle) call it directly. nullptr detaches. Virtual
  /// so forwarding wrappers (the service daemon's degradable scheduler) can
  /// hand the recorder to the policy they wrap.
  virtual void set_trace_recorder(obs::TraceRecorder* recorder) {
    trace_ = recorder;
  }

 protected:
  [[nodiscard]] const SimState& state() const {
    GURITA_CHECK_MSG(state_ != nullptr, "scheduler used before attach()");
    return *state_;
  }

  /// The attached trace sink, or nullptr. Emission sites follow the engine's
  /// pattern: null-check, then the inlined wants() bit test, then build.
  [[nodiscard]] obs::TraceRecorder* trace_recorder() const { return trace_; }

 private:
  const SimState* state_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace gurita
