// Scheduler policy interface.
//
// The engine owns mechanism (events, DAG release, rate allocation); a
// Scheduler owns policy: it observes simulation events and, whenever rates
// must be recomputed, assigns each active flow a (tier, weight) pair that
// the tiered weighted max-min allocator turns into rates (allocator.h).
//
// Decentralized schemes must restrict themselves to information a receiver
// could observe locally (bytes received, open connections) refreshed at
// their tick interval; centralized schemes (Aalo, GuritaPlus) may read the
// full SimState instantaneously — mirroring the paper's simulation setup.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "fault/fault.h"
#include "flowsim/state.h"
#include "obs/trace.h"
#include "snapshot/codec.h"

namespace gurita {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the run; `state` outlives the scheduler's use.
  virtual void attach(const SimState& state) { state_ = &state; }

  virtual void on_job_arrival(const SimJob& job, Time now) {
    (void)job;
    (void)now;
  }
  /// A coflow's dependencies completed; its flows just started.
  virtual void on_coflow_release(const SimCoflow& coflow, Time now) {
    (void)coflow;
    (void)now;
  }
  virtual void on_flow_finish(const SimFlow& flow, Time now) {
    (void)flow;
    (void)now;
  }
  virtual void on_coflow_finish(const SimCoflow& coflow, Time now) {
    (void)coflow;
    (void)now;
  }
  virtual void on_job_finish(const SimJob& job, Time now) {
    (void)job;
    (void)now;
  }

  // --- fault-injection extension (fault/fault.h, DESIGN.md §11) ---

  /// A fault struck (a non-recovery FaultKind). Delivered after the engine
  /// has aborted the affected flows, so state() already reflects the damage.
  /// The contract for kSchedulerStateLoss: drop every piece of learned
  /// control state (priority tables, history estimators) and rebuild from
  /// what a freshly restarted scheduler could re-derive by observing the
  /// live population — typically re-admitting every released unfinished
  /// coflow at the highest-priority level. The default ignores faults,
  /// which is correct only for stateless policies.
  virtual void on_fault(const FaultEvent& event, Time now) {
    (void)event;
    (void)now;
  }
  /// A recovery fired (kHostUp / kLinkUp / kStragglerEnd). Delivered before
  /// the engine re-schedules parked flows.
  virtual void on_recover(const FaultEvent& event, Time now) {
    (void)event;
    (void)now;
  }
  /// A job exhausted its retry budget (or a needed recovery never comes)
  /// and was marked failed; its surviving flows were cancelled. Schedulers
  /// holding per-job or per-coflow entries must drop them here — the job
  /// never reaches on_job_finish.
  virtual void on_job_fail(const SimJob& job, Time now) {
    (void)job;
    (void)now;
  }

  /// Periodic coordination interval (δ). 0 disables ticks. For Gurita this
  /// is the head-receiver update period; information the scheduler uses in
  /// assign() should be refreshed here, not read fresh, to model staleness.
  [[nodiscard]] virtual Time tick_interval() const { return 0; }

  /// Returns true if the tick changed any priority assignment — only then
  /// does the engine recompute rates, so no-op ticks stay cheap.
  virtual bool on_tick(Time now) {
    (void)now;
    return false;
  }

  /// Sets `tier` and `weight` on every active flow. Called by the engine
  /// immediately before each rate recomputation. `active` is the engine's
  /// persistent active list (arrival order modulo swap-with-last removals);
  /// schedulers must not rely on its order and cannot reorder it.
  virtual void assign(Time now, const std::vector<SimFlow*>& active) = 0;

  // --- checkpoint/restore extension (snapshot/, DESIGN.md §12) ---

  /// Serializes every piece of mutable policy state into `w`. The engine's
  /// checkpoint embeds these bytes in a length-prefixed section, so a
  /// scheduler may write nothing (the default, correct only for stateless
  /// policies) or any self-describing payload. Determinism contract: the
  /// bytes must be a pure function of the scheduler's logical state —
  /// serialize unordered containers in sorted key order, never by bucket
  /// iteration, so that checkpoint(checkpoint(restore(x))) == x.
  virtual void save_state(snapshot::Writer& w) const { (void)w; }

  /// Inverse of save_state. Called after attach() on a freshly constructed
  /// scheduler (same config as the checkpointed one); must leave the policy
  /// in a state whose future decisions are byte-identical to the original's.
  virtual void load_state(snapshot::Reader& r) { (void)r; }

  /// Attaches a structured trace sink (obs/trace.h) for decision records —
  /// queue transitions with their Ψ̈ factor breakdown, WRR weight snapshots,
  /// heavy-job marks. The engine wires this automatically when its own
  /// Config::trace is set; tests driving a scheduler through another engine
  /// (the differential oracle) call it directly. nullptr detaches.
  void set_trace_recorder(obs::TraceRecorder* recorder) { trace_ = recorder; }

 protected:
  [[nodiscard]] const SimState& state() const {
    GURITA_CHECK_MSG(state_ != nullptr, "scheduler used before attach()");
    return *state_;
  }

  /// The attached trace sink, or nullptr. Emission sites follow the engine's
  /// pattern: null-check, then the inlined wants() bit test, then build.
  [[nodiscard]] obs::TraceRecorder* trace_recorder() const { return trace_; }

 private:
  const SimState* state_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace gurita
