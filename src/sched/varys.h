// Varys — efficient coflow scheduling with complete prior knowledge
// (Chowdhury, Zhong, Stoica — SIGCOMM'14). Not part of the paper's §V
// comparison (it requires clairvoyance, which the paper's setting denies),
// but the canonical upper baseline from the related-work discussion and a
// useful reference point for experiments.
//
// Smallest Effective Bottleneck First (SEBF): a coflow's priority is its
// remaining *effective bottleneck* Γ — the time the coflow still needs if
// given the fabric alone, bounded by its most-loaded ingress or egress
// port. Coflows are served in ascending-Γ order (strict tiers). MADD's
// intra-coflow rate shaping (slow every flow to finish with the slowest)
// does not change CCTs under work-conserving max-min on a shared tier, so
// flows within a coflow simply share fairly.
//
// Multi-stage jobs are handled the way Varys would see them: each coflow
// becomes schedulable when its dependencies complete, and Γ is recomputed
// from remaining bytes as flows progress.
#pragma once

#include "common/units.h"
#include "flowsim/scheduler.h"

namespace gurita {

class VarysScheduler final : public Scheduler {
 public:
  struct Config {
    /// Port bandwidth used to convert bottleneck bytes into Γ seconds.
    Rate port_rate = gbps(10.0);
  };

  VarysScheduler() : VarysScheduler(Config{}) {}
  explicit VarysScheduler(const Config& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "varys"; }

  void assign(Time now, const std::vector<SimFlow*>& active) override;

  /// SEBF is stateless: Γ is recomputed from remaining bytes at every
  /// assign(), so a scheduler-state loss has nothing to forget and a failed
  /// job leaves nothing behind. The explicit overrides document that the
  /// default no-ops are the *intended* fault semantics, not an omission.
  void on_fault(const FaultEvent& event, Time now) override {
    (void)event;
    (void)now;
  }
  void on_job_fail(const SimJob& job, Time now) override {
    (void)job;
    (void)now;
  }

  /// Checkpoint hooks are intentional no-ops for the same reason: every
  /// assign() derives Γ from engine state, so a snapshot carries nothing
  /// and a restored Varys is trivially byte-identical.
  void save_state(snapshot::Writer& w) const override { (void)w; }
  void load_state(snapshot::Reader& r) override { (void)r; }

  /// Γ for a set of remaining per-flow demands grouped by src/dst host:
  /// max over ports of remaining bytes in/out at time `now` (residuals are
  /// extrapolated from each flow's lazy-drain settle point), divided by the
  /// port rate. Exposed for tests.
  [[nodiscard]] static Bytes bottleneck_bytes(
      const std::vector<const SimFlow*>& flows, Time now);

 private:
  Config config_;
};

}  // namespace gurita
