// Baraat — decentralized task-aware scheduling (Dogar et al., SIGCOMM'14),
// "the current state of the art decentralized scheduler" the paper compares
// against: FIFO with Limited Multiplexing (FIFO-LM).
//
// Jobs (tasks) are served in arrival order, identified by a globally
// increasing serial. Pure FIFO would let an elephant head-of-line block
// everyone, so FIFO-LM (a) keeps a base multiplexing level — the first M
// jobs in arrival order share the network — and (b) detects *heavy* jobs
// (accumulated bytes beyond a threshold) which stop occupying a
// multiplexing slot, letting the jobs queued behind them through. We
// realize this by forming service groups over the arrival order: a group
// holds up to `base_multiplexing` light jobs plus every heavy job
// interleaved among them; groups map to allocator tiers in order, and
// flows within a group share fairly.
#pragma once

#include <unordered_map>

#include "common/units.h"
#include "flowsim/scheduler.h"

namespace gurita {

class BaraatScheduler final : public Scheduler {
 public:
  struct Config {
    /// A job with more accumulated bytes than this is "heavy" and stops
    /// blocking the jobs queued behind it.
    Bytes heavy_threshold = 100 * kMB;
    /// Light jobs that may share the network concurrently (FIFO-LM's base
    /// multiplexing level).
    int base_multiplexing = 4;
  };

  BaraatScheduler() : BaraatScheduler(Config{}) {}
  explicit BaraatScheduler(const Config& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "baraat"; }

  void on_job_arrival(const SimJob& job, Time now) override;
  /// kSchedulerStateLoss forgets the arrival-order serials and heavy marks.
  /// Live jobs re-seed serials in ascending job-id order — which matches
  /// arrival order for the workloads we generate, but heavy jobs become
  /// light again and re-earn their kHeavyMark from the (exact) bytes-sent
  /// signal.
  void on_fault(const FaultEvent& event, Time now) override;
  /// Drops the failed job's serial and heavy mark.
  void on_job_fail(const SimJob& job, Time now) override;
  /// Re-keys the serial and heavy tables across an engine compaction (also
  /// drops finished jobs' leftover entries). Serials keep their values, so
  /// the FIFO order over survivors is unchanged.
  void on_compact(const CompactionRemap& remap) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;
  /// Checkpoint hooks (DESIGN.md §12): arrival serials and heavy marks,
  /// serialized in sorted-key order (the tables themselves stay unordered —
  /// assign() builds its own sorted view each call).
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  Config config_;
  std::unordered_map<JobId, std::uint64_t> serial_;
  std::uint64_t next_serial_ = 0;
  /// Jobs already reclassified as heavy; the light→heavy transition fires
  /// exactly one kHeavyMark trace record per job.
  std::unordered_map<JobId, bool> heavy_;
};

}  // namespace gurita
