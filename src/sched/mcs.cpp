#include "sched/mcs.h"

#include <algorithm>

namespace gurita {

void McsScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  (void)now;
  queue_of_.emplace(coflow.id, 0);
}

void McsScheduler::on_coflow_finish(const SimCoflow& coflow, Time now) {
  (void)now;
  queue_of_.erase(coflow.id);
}

bool McsScheduler::on_tick(Time now) {
  (void)now;
  bool changed = false;
  for (auto& [cid, queue] : queue_of_) {
    const SimCoflow& coflow = state().coflow(cid);
    if (coflow.finished()) continue;
    Bytes ell_max = 0;
    int open = 0;
    for (FlowId fid : coflow.flows) {
      const SimFlow& f = state().flow(fid);
      ell_max = std::max(ell_max, f.bytes_sent());
      if (f.active()) ++open;
    }
    const double signal = ell_max * static_cast<double>(open);
    const int level = thresholds_.level(signal);
    if (level > queue) {
      queue = level;
      changed = true;
    }
  }
  return changed;
}

void McsScheduler::assign(Time now, std::vector<SimFlow*>& active) {
  (void)now;
  for (SimFlow* f : active) {
    const CoflowId cid = state().job(f->job).coflows[f->coflow_index];
    const auto it = queue_of_.find(cid);
    GURITA_CHECK_MSG(it != queue_of_.end(), "flow of an unknown coflow");
    f->tier = it->second;
    f->weight = 1.0;
  }
}

}  // namespace gurita
