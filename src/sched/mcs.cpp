#include "sched/mcs.h"

#include <algorithm>

namespace gurita {

void McsScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  (void)now;
  queue_of_.emplace(coflow.id, 0);
}

void McsScheduler::on_coflow_finish(const SimCoflow& coflow, Time now) {
  (void)now;
  queue_of_.erase(coflow.id);
}

bool McsScheduler::on_tick(Time now) {
  (void)now;
  bool changed = false;
  for (auto& [cid, queue] : queue_of_) {
    const SimCoflow& coflow = state().coflow(cid);
    if (coflow.finished()) continue;
    const double signal =
        state().coflow_ell_max(cid) *
        static_cast<double>(state().coflow_open_connections(cid));
    const int level = thresholds_.level(signal);
    if (level > queue) {
      queue = level;
      changed = true;
    }
  }
  return changed;
}

void McsScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  (void)now;
  for (SimFlow* f : active) {
    const CoflowId cid = state().job(f->job).coflows[f->coflow_index];
    const auto it = queue_of_.find(cid);
    GURITA_CHECK_MSG(it != queue_of_.end(), "flow of an unknown coflow");
    f->tier = it->second;
    f->weight = 1.0;
  }
}

}  // namespace gurita
