#include "sched/mcs.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace gurita {

void McsScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  (void)now;
  queue_of_.emplace(coflow.id, 0);
}

void McsScheduler::on_coflow_finish(const SimCoflow& coflow, Time now) {
  (void)now;
  queue_of_.erase(coflow.id);
}

void McsScheduler::on_compact(const CompactionRemap& remap) {
  remap_table(queue_of_, remap.coflow_map);
}

bool McsScheduler::on_tick(Time now) {
  (void)now;
  bool changed = false;
  for (auto& [cid, queue] : queue_of_) {
    const SimCoflow& coflow = state().coflow(cid);
    if (coflow.finished()) continue;
    const double signal =
        state().coflow_ell_max(cid) *
        static_cast<double>(state().coflow_open_connections(cid));
    const int level = thresholds_.level(signal);
    if (level > queue) {
      queue = level;
      changed = true;
    }
  }
  return changed;
}

void McsScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  (void)now;
  for (SimFlow* f : active) {
    const CoflowId cid = state().job(f->job).coflows[f->coflow_index];
    const auto it = queue_of_.find(cid);
    GURITA_CHECK_MSG(it != queue_of_.end(), "flow of an unknown coflow");
    f->tier = it->second;
    f->weight = 1.0;
  }
}

void McsScheduler::save_state(snapshot::Writer& w) const {
  std::vector<std::pair<CoflowId, int>> queues(queue_of_.begin(),
                                               queue_of_.end());
  std::sort(queues.begin(), queues.end());
  w.u64(queues.size());
  for (const auto& [cid, q] : queues) {
    w.u64(cid.value());
    w.i32(q);
  }
}

void McsScheduler::load_state(snapshot::Reader& r) {
  queue_of_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const CoflowId cid{r.u64()};
    queue_of_.emplace(cid, r.i32());
  }
}

}  // namespace gurita
