// Aalo — efficient coflow scheduling without prior knowledge (Chowdhury &
// Stoica, SIGCOMM'15): the paper's *centralized* comparator.
//
// Discretized Coflow-Aware Least-Attained Service (D-CLAS): each coflow is
// placed into one of Q priority queues according to the bytes it has sent
// so far, with exponentially spaced queue boundaries; coflows are demoted
// as they send more. Across queues, higher-priority queues are served
// first. Within a queue, Aalo's D-CLAS supports FIFO (by coflow release
// time) or fair sharing among the queue's coflows; with few queues strict
// FIFO over-serializes mid-size coflows, so fair sharing — which the Aalo
// paper reports performing comparably — is the default here.
//
// Matching the paper's simulation setup, Aalo enjoys a global,
// instantaneous view: its signal is refreshed at every rate recomputation
// with zero coordination delay ("Aalo's additional delay from managing
// centralized system is not considered ... information on job is made
// available instantaneously", §V).
#pragma once

#include <unordered_map>

#include "common/units.h"
#include "flowsim/scheduler.h"
#include "sched/thresholds.h"

namespace gurita {

class AaloScheduler final : public Scheduler {
 public:
  struct Config {
    int queues = 4;
    Bytes first_threshold = 10 * kMB;
    double multiplier = 10.0;
    /// Strict FIFO among coflows of one queue (Aalo's default design) vs
    /// fair sharing within the queue (comparable per the Aalo paper, and
    /// much stronger with only 4 queues).
    bool intra_queue_fifo = false;
  };

  AaloScheduler() : AaloScheduler(Config{}) {}
  explicit AaloScheduler(const Config& config)
      : config_(config),
        thresholds_(config.queues, config.first_threshold, config.multiplier) {}

  [[nodiscard]] std::string name() const override { return "aalo"; }

  void on_coflow_release(const SimCoflow& coflow, Time now) override;
  /// kSchedulerStateLoss models an Aalo coordinator restart: attained-service
  /// queues and global FIFO ranks are forgotten. Live coflows re-register at
  /// the highest queue with fresh ranks in deterministic (job, coflow)
  /// order; D-CLAS then re-demotes them from the (still exact) bytes-sent
  /// signal at the next recomputation.
  void on_fault(const FaultEvent& event, Time now) override;
  /// Drops the failed job's coflows from the rank and queue tables.
  void on_job_fail(const SimJob& job, Time now) override;
  /// Re-keys the rank and queue tables across an engine compaction (also
  /// drops finished coflows' leftover entries, keeping both tables
  /// O(active) in the open-horizon daemon).
  void on_compact(const CompactionRemap& remap) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;
  /// Checkpoint hooks (DESIGN.md §12): FIFO ranks and monotone queue marks.
  /// The tables stay unordered (assign() only looks keys up, never iterates
  /// them) and are serialized in sorted-key order so the bytes are a pure
  /// function of logical state.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  Config config_;
  ExpThresholds thresholds_;
  /// FIFO rank: order in which coflows were released (globally).
  std::unordered_map<CoflowId, std::uint64_t> fifo_rank_;
  std::uint64_t next_rank_ = 0;
  /// Demotion is monotone: remember the deepest queue reached.
  std::unordered_map<CoflowId, int> queue_of_;
};

}  // namespace gurita
