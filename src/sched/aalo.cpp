#include "sched/aalo.h"

namespace gurita {

namespace {
/// Room for FIFO ranks below one queue step in the composite tier.
constexpr Tier kQueueStride = 1LL << 40;
}  // namespace

void AaloScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  (void)now;
  fifo_rank_.emplace(coflow.id, next_rank_++);
  queue_of_.emplace(coflow.id, 0);
}

void AaloScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  (void)now;
  for (SimFlow* f : active) {
    const SimJob& job = state().job(f->job);
    const CoflowId cid = job.coflows[f->coflow_index];
    auto qit = queue_of_.find(cid);
    GURITA_CHECK_MSG(qit != queue_of_.end(), "flow of an unknown coflow");
    // Global instantaneous signal: bytes this coflow has sent so far.
    qit->second =
        std::max(qit->second, thresholds_.level(state().coflow_bytes_sent(cid)));
    const Tier queue = qit->second;
    if (config_.intra_queue_fifo) {
      const Tier rank = static_cast<Tier>(fifo_rank_.at(cid));
      GURITA_CHECK_MSG(rank < kQueueStride, "FIFO rank overflowed tier stride");
      f->tier = queue * kQueueStride + rank;
    } else {
      f->tier = queue;
    }
    f->weight = 1.0;
  }
}

}  // namespace gurita
