#include "sched/aalo.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace gurita {

namespace {
/// Room for FIFO ranks below one queue step in the composite tier.
constexpr Tier kQueueStride = 1LL << 40;
}  // namespace

void AaloScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  fifo_rank_.emplace(coflow.id, next_rank_++);
  queue_of_.emplace(coflow.id, 0);
  obs::TraceRecorder* tr = trace_recorder();
  if (tr && tr->wants(obs::TraceEventKind::kQueueChange)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kQueueChange;
    r.time = now;
    r.job = coflow.job.value();
    r.coflow = coflow.id.value();
    r.i0 = -1;
    r.i1 = 0;
    r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kRelease);
    tr->emit(r);
  }
}

void AaloScheduler::on_fault(const FaultEvent& event, Time now) {
  if (event.kind != FaultKind::kSchedulerStateLoss) return;
  fifo_rank_.clear();
  queue_of_.clear();
  next_rank_ = 0;
  obs::TraceRecorder* tr = trace_recorder();
  const bool trace_queues =
      tr != nullptr && tr->wants(obs::TraceEventKind::kQueueChange);
  for (std::size_t j = 0; j < state().job_count(); ++j) {
    const SimJob& job = state().job(JobId(j));
    if (job.finished() || job.arrival_time > now) continue;
    for (CoflowId cid : job.coflows) {
      const SimCoflow& coflow = state().coflow(cid);
      if (!coflow.released() || coflow.finished()) continue;
      fifo_rank_.emplace(cid, next_rank_++);
      queue_of_.emplace(cid, 0);
      if (trace_queues) {
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kQueueChange;
        r.time = now;
        r.job = job.id.value();
        r.coflow = cid.value();
        r.i0 = -1;
        r.i1 = 0;
        r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kFaultReset);
        tr->emit(r);
      }
    }
  }
}

void AaloScheduler::on_job_fail(const SimJob& job, Time now) {
  (void)now;
  for (CoflowId cid : job.coflows) {
    fifo_rank_.erase(cid);
    queue_of_.erase(cid);
  }
}

void AaloScheduler::on_compact(const CompactionRemap& remap) {
  remap_table(fifo_rank_, remap.coflow_map);
  remap_table(queue_of_, remap.coflow_map);
}

void AaloScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  obs::TraceRecorder* tr = trace_recorder();
  const bool trace_queues =
      tr != nullptr && tr->wants(obs::TraceEventKind::kQueueChange);
  for (SimFlow* f : active) {
    const SimJob& job = state().job(f->job);
    const CoflowId cid = job.coflows[f->coflow_index];
    auto qit = queue_of_.find(cid);
    GURITA_CHECK_MSG(qit != queue_of_.end(), "flow of an unknown coflow");
    // Global instantaneous signal: bytes this coflow has sent so far.
    const Bytes sent = state().coflow_bytes_sent(cid);
    const Tier level = thresholds_.level(sent);
    if (level > qit->second) {
      if (trace_queues) {
        // D-CLAS demotion: the decision signal is bytes sent, carried in
        // v5 (no Ψ̈ factor breakdown for non-LBEF schedulers).
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kQueueChange;
        r.time = now;
        r.job = job.id.value();
        r.coflow = cid.value();
        r.v5 = sent;
        r.i0 = static_cast<std::int32_t>(qit->second);
        r.i1 = static_cast<std::int32_t>(level);
        r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kBytesSent);
        tr->emit(r);
      }
      qit->second = level;
    }
    const Tier queue = qit->second;
    if (config_.intra_queue_fifo) {
      const Tier rank = static_cast<Tier>(fifo_rank_.at(cid));
      GURITA_CHECK_MSG(rank < kQueueStride, "FIFO rank overflowed tier stride");
      f->tier = queue * kQueueStride + rank;
    } else {
      f->tier = queue;
    }
    f->weight = 1.0;
  }
}

void AaloScheduler::save_state(snapshot::Writer& w) const {
  std::vector<std::pair<CoflowId, std::uint64_t>> ranks(fifo_rank_.begin(),
                                                        fifo_rank_.end());
  std::sort(ranks.begin(), ranks.end());
  w.u64(ranks.size());
  for (const auto& [cid, rank] : ranks) {
    w.u64(cid.value());
    w.u64(rank);
  }
  w.u64(next_rank_);
  std::vector<std::pair<CoflowId, int>> queues(queue_of_.begin(),
                                               queue_of_.end());
  std::sort(queues.begin(), queues.end());
  w.u64(queues.size());
  for (const auto& [cid, q] : queues) {
    w.u64(cid.value());
    w.i32(q);
  }
}

void AaloScheduler::load_state(snapshot::Reader& r) {
  fifo_rank_.clear();
  const std::uint64_t n_ranks = r.u64();
  for (std::uint64_t i = 0; i < n_ranks; ++i) {
    const CoflowId cid{r.u64()};
    fifo_rank_.emplace(cid, r.u64());
  }
  next_rank_ = r.u64();
  queue_of_.clear();
  const std::uint64_t n_queues = r.u64();
  for (std::uint64_t i = 0; i < n_queues; ++i) {
    const CoflowId cid{r.u64()};
    queue_of_.emplace(cid, r.i32());
  }
}

}  // namespace gurita
