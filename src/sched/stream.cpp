#include "sched/stream.h"

namespace gurita {

void StreamScheduler::on_job_arrival(const SimJob& job, Time now) {
  (void)now;
  queue_of_.emplace(job.id, 0);  // jobs start at the highest priority
}

bool StreamScheduler::on_tick(Time now) {
  (void)now;
  bool changed = false;
  for (auto& [id, q] : queue_of_) {
    if (state().job(id).finished()) continue;
    // Demotion only: priority never climbs back (bytes sent is monotone).
    const int level = thresholds_.level(state().job_bytes_sent(id));
    if (level > q) {
      q = level;
      changed = true;
    }
  }
  return changed;
}

void StreamScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  (void)now;
  for (SimFlow* f : active) {
    const auto it = queue_of_.find(f->job);
    GURITA_CHECK_MSG(it != queue_of_.end(), "flow of an unknown job");
    f->tier = it->second;
    f->weight = 1.0;
  }
}

}  // namespace gurita
