#include "sched/stream.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace gurita {

void StreamScheduler::on_job_arrival(const SimJob& job, Time now) {
  (void)now;
  queue_of_.emplace(job.id, 0);  // jobs start at the highest priority
}

void StreamScheduler::on_compact(const CompactionRemap& remap) {
  remap_table(queue_of_, remap.job_map);
}

bool StreamScheduler::on_tick(Time now) {
  (void)now;
  bool changed = false;
  for (auto& [id, q] : queue_of_) {
    if (state().job(id).finished()) continue;
    // Demotion only: priority never climbs back (bytes sent is monotone).
    const int level = thresholds_.level(state().job_bytes_sent(id));
    if (level > q) {
      q = level;
      changed = true;
    }
  }
  return changed;
}

void StreamScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  (void)now;
  for (SimFlow* f : active) {
    const auto it = queue_of_.find(f->job);
    GURITA_CHECK_MSG(it != queue_of_.end(), "flow of an unknown job");
    f->tier = it->second;
    f->weight = 1.0;
  }
}

void StreamScheduler::save_state(snapshot::Writer& w) const {
  std::vector<std::pair<JobId, int>> queues(queue_of_.begin(),
                                            queue_of_.end());
  std::sort(queues.begin(), queues.end());
  w.u64(queues.size());
  for (const auto& [jid, q] : queues) {
    w.u64(jid.value());
    w.i32(q);
  }
}

void StreamScheduler::load_state(snapshot::Reader& r) {
  queue_of_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const JobId jid{r.u64()};
    queue_of_.emplace(jid, r.i32());
  }
}

}  // namespace gurita
