// MCS — multi-attribute coflow scheduling (Wang et al., cited in the
// paper's related work): "schedules coflows according to number of flows
// and flow length of a coflow".
//
// Per-coflow signal = width × observed largest flow — exactly Gurita's
// horizontal × vertical blocking area, but with *no* stage awareness
// (no ω), no skew adjustment (no ε) and no per-job aggregation. Its place
// in this reproduction is as a built-in ablation: it isolates how much of
// Gurita's win comes from the multi-stage treatment versus the raw
// two-dimensional coflow size signal.
//
// Coflows are demoted through exponentially spaced thresholds on that
// signal and enforced with strict priority queues.
#pragma once

#include <unordered_map>

#include "common/units.h"
#include "flowsim/scheduler.h"
#include "sched/thresholds.h"

namespace gurita {

class McsScheduler final : public Scheduler {
 public:
  struct Config {
    int queues = 4;
    /// First threshold on the width × ℓ_max signal (byte-scaled).
    double first_threshold = 2e7;
    double multiplier = 16.0;
    Time update_interval = 8 * kMillisecond;
  };

  McsScheduler() : McsScheduler(Config{}) {}
  explicit McsScheduler(const Config& config)
      : config_(config),
        thresholds_(config.queues, config.first_threshold, config.multiplier) {}

  [[nodiscard]] std::string name() const override { return "mcs"; }

  [[nodiscard]] Time tick_interval() const override {
    return config_.update_interval;
  }
  bool on_tick(Time now) override;
  void on_coflow_release(const SimCoflow& coflow, Time now) override;
  void on_coflow_finish(const SimCoflow& coflow, Time now) override;
  /// Re-keys the stale queue table across an engine compaction.
  void on_compact(const CompactionRemap& remap) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;
  /// Checkpoint hooks (DESIGN.md §12): the stale queue table, serialized in
  /// sorted-key order. The map itself may stay unordered — on_tick updates
  /// each entry independently (no FP folds, no trace records), so its
  /// iteration order is unobservable.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  Config config_;
  ExpThresholds thresholds_;
  std::unordered_map<CoflowId, int> queue_of_;
};

}  // namespace gurita
