#include "sched/baraat.h"

#include <algorithm>
#include <vector>

namespace gurita {

void BaraatScheduler::on_job_arrival(const SimJob& job, Time now) {
  (void)now;
  serial_.emplace(job.id, next_serial_++);
  heavy_.emplace(job.id, false);
}

void BaraatScheduler::on_fault(const FaultEvent& event, Time now) {
  if (event.kind != FaultKind::kSchedulerStateLoss) return;
  serial_.clear();
  heavy_.clear();
  next_serial_ = 0;
  for (std::size_t j = 0; j < state().job_count(); ++j) {
    const SimJob& job = state().job(JobId(j));
    if (job.finished() || job.arrival_time > now) continue;
    serial_.emplace(job.id, next_serial_++);
    heavy_.emplace(job.id, false);
  }
}

void BaraatScheduler::on_job_fail(const SimJob& job, Time now) {
  (void)now;
  serial_.erase(job.id);
  heavy_.erase(job.id);
}

void BaraatScheduler::on_compact(const CompactionRemap& remap) {
  remap_table(serial_, remap.job_map);
  remap_table(heavy_, remap.job_map);
}

void BaraatScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  // Jobs with at least one active flow, in FIFO (serial) order.
  std::vector<std::pair<std::uint64_t, JobId>> jobs;
  for (const SimFlow* f : active) {
    const auto it = serial_.find(f->job);
    GURITA_CHECK_MSG(it != serial_.end(), "flow of an unknown job");
    jobs.emplace_back(it->second, f->job);
  }
  std::sort(jobs.begin(), jobs.end());
  jobs.erase(std::unique(jobs.begin(), jobs.end()), jobs.end());

  // Form service groups: each tier holds up to `base_multiplexing` light
  // jobs; heavy jobs ride along without occupying a slot (they no longer
  // block the queue behind them).
  GURITA_CHECK_MSG(config_.base_multiplexing >= 1,
                   "base multiplexing must be >= 1");
  std::unordered_map<JobId, Tier> tier_of;
  Tier tier = 0;
  int light_in_group = 0;
  for (const auto& [serial, id] : jobs) {
    (void)serial;
    const Bytes sent = state().job_bytes_sent(id);
    const bool heavy = sent > config_.heavy_threshold;
    if (heavy) {
      bool& marked = heavy_.at(id);
      if (!marked) {
        marked = true;
        obs::TraceRecorder* tr = trace_recorder();
        if (tr && tr->wants(obs::TraceEventKind::kHeavyMark)) {
          obs::TraceRecord r;
          r.kind = obs::TraceEventKind::kHeavyMark;
          r.time = now;
          r.job = id.value();
          r.v0 = sent;
          tr->emit(r);
        }
      }
    }
    tier_of[id] = tier;
    if (!heavy && ++light_in_group >= config_.base_multiplexing) {
      ++tier;
      light_in_group = 0;
    }
  }

  for (SimFlow* f : active) {
    f->tier = tier_of.at(f->job);
    f->weight = 1.0;
  }
}

void BaraatScheduler::save_state(snapshot::Writer& w) const {
  std::vector<std::pair<JobId, std::uint64_t>> serials(serial_.begin(),
                                                       serial_.end());
  std::sort(serials.begin(), serials.end());
  w.u64(serials.size());
  for (const auto& [jid, serial] : serials) {
    w.u64(jid.value());
    w.u64(serial);
  }
  w.u64(next_serial_);
  std::vector<std::pair<JobId, bool>> heavy(heavy_.begin(), heavy_.end());
  std::sort(heavy.begin(), heavy.end());
  w.u64(heavy.size());
  for (const auto& [jid, h] : heavy) {
    w.u64(jid.value());
    w.boolean(h);
  }
}

void BaraatScheduler::load_state(snapshot::Reader& r) {
  serial_.clear();
  const std::uint64_t n_serials = r.u64();
  for (std::uint64_t i = 0; i < n_serials; ++i) {
    const JobId jid{r.u64()};
    serial_.emplace(jid, r.u64());
  }
  next_serial_ = r.u64();
  heavy_.clear();
  const std::uint64_t n_heavy = r.u64();
  for (std::uint64_t i = 0; i < n_heavy; ++i) {
    const JobId jid{r.u64()};
    heavy_.emplace(jid, r.boolean());
  }
}

}  // namespace gurita
