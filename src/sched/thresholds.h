// Exponentially-spaced priority-demotion thresholds.
//
// TBS-style schedulers (Stream, Aalo) and Gurita all map a scalar signal
// (bytes sent, or blocking effect Ψ) onto one of Q priority queues by
// comparing it against exponentially spaced thresholds, "as recommended by
// [Aalo, SIGCOMM'15]": queue 0 holds signals below t_0, queue i holds
// signals in [t_{i-1}, t_i), and the last queue everything above t_{Q-2}.
#pragma once

#include <vector>

#include "common/check.h"

namespace gurita {

class ExpThresholds {
 public:
  /// `queues` >= 1 priority levels; thresholds t_i = first * multiplier^i
  /// for i in [0, queues-1). `first` > 0, `multiplier` > 1.
  ExpThresholds(int queues, double first, double multiplier);

  [[nodiscard]] int queues() const { return queues_; }

  /// Queue (0 = highest priority) for signal value `x` >= 0.
  [[nodiscard]] int level(double x) const;

  /// Threshold i (upper bound of queue i), i in [0, queues-1).
  [[nodiscard]] double threshold(int i) const;

 private:
  int queues_;
  std::vector<double> thresholds_;
};

}  // namespace gurita
