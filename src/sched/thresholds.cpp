#include "sched/thresholds.h"

namespace gurita {

ExpThresholds::ExpThresholds(int queues, double first, double multiplier)
    : queues_(queues) {
  GURITA_CHECK_MSG(queues >= 1, "need at least one queue");
  GURITA_CHECK_MSG(first > 0, "first threshold must be positive");
  GURITA_CHECK_MSG(multiplier > 1, "multiplier must exceed 1");
  thresholds_.reserve(static_cast<std::size_t>(queues) - 1);
  double t = first;
  for (int i = 0; i + 1 < queues; ++i) {
    thresholds_.push_back(t);
    t *= multiplier;
  }
}

int ExpThresholds::level(double x) const {
  GURITA_CHECK_MSG(x >= 0, "negative signal value");
  int lvl = 0;
  while (lvl < static_cast<int>(thresholds_.size()) && x >= thresholds_[lvl])
    ++lvl;
  return lvl;
}

double ExpThresholds::threshold(int i) const {
  GURITA_CHECK_MSG(i >= 0 && i < static_cast<int>(thresholds_.size()),
                   "threshold index out of range");
  return thresholds_[i];
}

}  // namespace gurita
