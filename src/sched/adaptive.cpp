#include "sched/adaptive.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace gurita {

AdaptiveScheduler::AdaptiveScheduler(
    const Config& config, std::vector<std::unique_ptr<Scheduler>> children)
    : config_(config), children_(std::move(children)) {
  GURITA_CHECK_MSG(!children_.empty(), "adaptive needs at least one child");
  for (const auto& c : children_)
    GURITA_CHECK_MSG(c != nullptr, "adaptive child must not be null");
  refresh_features();
}

void AdaptiveScheduler::attach(const SimState& state) {
  Scheduler::attach(state);
  for (auto& c : children_) c->attach(state);
}

void AdaptiveScheduler::set_trace_recorder(obs::TraceRecorder* recorder) {
  Scheduler::set_trace_recorder(recorder);
  for (auto& c : children_) c->set_trace_recorder(recorder);
}

std::string AdaptiveScheduler::active_child() const {
  return children_[active_]->name();
}

void AdaptiveScheduler::on_job_arrival(const SimJob& job, Time now) {
  const double stages = static_cast<double>(job.num_stages);
  double width = 0;
  for (const CoflowSpec& c : job.spec.coflows)
    width += static_cast<double>(c.width());
  width /= static_cast<double>(job.spec.coflows.empty()
                                   ? 1
                                   : job.spec.coflows.size());
  const double a = config_.feature_alpha;
  stages_ewma_ = jobs_seen_ == 0 ? stages : (1 - a) * stages_ewma_ + a * stages;
  width_ewma_ = jobs_seen_ == 0 ? width : (1 - a) * width_ewma_ + a * width;
  ++jobs_seen_;
  ++active_jobs_;
  features_.add("adaptive.jobs_seen");
  for (auto& c : children_) c->on_job_arrival(job, now);
}

void AdaptiveScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  for (auto& c : children_) c->on_coflow_release(coflow, now);
}

void AdaptiveScheduler::on_flow_finish(const SimFlow& flow, Time now) {
  for (auto& c : children_) c->on_flow_finish(flow, now);
}

void AdaptiveScheduler::on_coflow_finish(const SimCoflow& coflow, Time now) {
  for (auto& c : children_) c->on_coflow_finish(coflow, now);
}

void AdaptiveScheduler::on_job_finish(const SimJob& job, Time now) {
  if (active_jobs_ > 0) --active_jobs_;
  for (auto& c : children_) c->on_job_finish(job, now);
}

void AdaptiveScheduler::on_fault(const FaultEvent& event, Time now) {
  ++faults_since_tick_;
  features_.add("adaptive.faults");
  if (event.kind == FaultKind::kSchedulerStateLoss) reset_features();
  for (auto& c : children_) c->on_fault(event, now);
}

void AdaptiveScheduler::on_recover(const FaultEvent& event, Time now) {
  for (auto& c : children_) c->on_recover(event, now);
}

void AdaptiveScheduler::on_job_fail(const SimJob& job, Time now) {
  if (active_jobs_ > 0) --active_jobs_;
  for (auto& c : children_) c->on_job_fail(job, now);
}

void AdaptiveScheduler::on_compact(const CompactionRemap& remap) {
  for (auto& c : children_) c->on_compact(remap);
}

void AdaptiveScheduler::reset_features() {
  stages_ewma_ = 0;
  width_ewma_ = 0;
  fault_ewma_ = 0;
  jobs_seen_ = 0;
  // active_jobs_ is observable (live population), not learned: keep it.
  refresh_features();
}

void AdaptiveScheduler::refresh_features() {
  features_.set_gauge("adaptive.stages_ewma", stages_ewma_);
  features_.set_gauge("adaptive.width_ewma", width_ewma_);
  features_.set_gauge("adaptive.active_jobs",
                      static_cast<double>(active_jobs_));
  features_.set_gauge("adaptive.fault_pressure", fault_ewma_);
}

std::size_t AdaptiveScheduler::desired_child() const {
  // The decision reads the published feature store, not the raw scalars —
  // the same numbers a telemetry consumer would see.
  const double stages = features_.gauge("adaptive.stages_ewma");
  const double live = features_.gauge("adaptive.active_jobs");
  const double pressure = features_.gauge("adaptive.fault_pressure");
  if (pressure >= config_.fault_pressure) return 0;
  if (stages >= config_.deep_stages) return 0;
  if (stages < config_.shallow_stages && children_.size() > 1) {
    if (live >= config_.bursty_jobs && children_.size() > 2) return 2;
    return 1;
  }
  return active_;  // dead zone: keep the current choice
}

bool AdaptiveScheduler::on_tick(Time now) {
  fault_ewma_ = 0.5 * fault_ewma_ + static_cast<double>(faults_since_tick_);
  faults_since_tick_ = 0;
  refresh_features();

  bool changed = false;
  const std::size_t want = desired_child();
  if (want != active_) {
    pending_ticks_ = want == pending_ ? pending_ticks_ + 1 : 1;
    pending_ = want;
    if (pending_ticks_ >= config_.hysteresis_ticks) {
      active_ = want;
      pending_ticks_ = 0;
      ++switches_;
      features_.add("adaptive.switches");
      changed = true;
    }
  } else {
    pending_ = active_;
    pending_ticks_ = 0;
  }

  for (auto& c : children_)
    if (c->tick_interval() > 0 && c->on_tick(now)) changed = true;
  return changed;
}

void AdaptiveScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  const std::size_t secondary = active_ == 0 ? 1 : 0;
  const bool blend =
      children_.size() > 1 && config_.blend_boost > 0 && !active.empty();
  Tier secondary_min = std::numeric_limits<Tier>::max();
  if (blend) {
    children_[secondary]->assign(now, active);
    secondary_tier_.resize(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      secondary_tier_[i] = active[i]->tier;
      secondary_min = std::min(secondary_min, active[i]->tier);
    }
  }
  children_[active_]->assign(now, active);
  if (!blend) return;
  // The secondary's first-served flows get a weight boost within whatever
  // tier the primary placed them in; tiers stay the primary's alone.
  for (std::size_t i = 0; i < active.size(); ++i)
    if (secondary_tier_[i] == secondary_min)
      active[i]->weight *= 1 + config_.blend_boost;
}

void AdaptiveScheduler::save_state(snapshot::Writer& w) const {
  w.u64(children_.size());
  w.u64(active_);
  w.u64(pending_);
  w.i32(pending_ticks_);
  w.f64(stages_ewma_);
  w.f64(width_ewma_);
  w.f64(fault_ewma_);
  w.u64(jobs_seen_);
  w.u64(active_jobs_);
  w.u64(faults_since_tick_);
  w.u64(switches_);
  for (const auto& c : children_) {
    const std::size_t token = w.begin_section();
    c->save_state(w);
    w.end_section(token);
  }
}

void AdaptiveScheduler::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  GURITA_CHECK_MSG(n == children_.size(),
                   "adaptive checkpoint has a different child count");
  active_ = r.u64();
  pending_ = r.u64();
  pending_ticks_ = r.i32();
  stages_ewma_ = r.f64();
  width_ewma_ = r.f64();
  fault_ewma_ = r.f64();
  jobs_seen_ = r.u64();
  active_jobs_ = r.u64();
  faults_since_tick_ = r.u64();
  switches_ = r.u64();
  for (auto& c : children_) {
    const std::size_t end = r.begin_section();
    c->load_state(r);
    r.end_section(end);
  }
  refresh_features();
}

}  // namespace gurita
