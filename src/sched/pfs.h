// Per-Flow Fair Sharing (PFS) — the paper's baseline.
//
// "A scheduling scheme that divides the resource capacity equally among
// flows traversing the same link" (§V): exactly (unweighted) max-min
// fairness, which is what TCP approximates in steady state. Every flow is
// placed in one tier with weight 1.
#pragma once

#include "flowsim/scheduler.h"

namespace gurita {

class PfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "pfs"; }

  void assign(Time now, const std::vector<SimFlow*>& active) override {
    (void)now;
    for (SimFlow* f : active) {
      f->tier = 0;
      f->weight = 1.0;
    }
  }
};

}  // namespace gurita
