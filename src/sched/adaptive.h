// Adaptive — workload-driven policy selection over the existing schedulers
// (ROADMAP item 5's "adaptive policy").
//
// The paper's evaluation shows no single policy dominating every regime:
// Gurita's multi-faced LBEF wins on deep multi-stage DAGs, Stream's pure
// SPQ wins tiny single-stage jobs (Fig. 7 category I), and Baraat's FIFO-LM
// holds up under heavy bursty load. This scheduler observes the workload
// through the ordinary scheduler hooks, folds what it sees into a small
// feature store (an obs::Registry, so the features double as exportable
// telemetry), and at every δ tick picks the child policy the features call
// for — with hysteresis, so a single odd arrival cannot thrash the choice —
// while *blending* in the runner-up: flows the secondary policy would serve
// first get a deterministic weight boost inside their primary tier.
//
// Every hook forwards to every child, so each child's learned state is
// always what it would have been had it run alone — switching the active
// child at a tick boundary is therefore safe, and checkpoint/restore,
// compaction and fault delivery reduce to forwarding plus the (id-free)
// feature scalars. Children are injected: sched/ stays independent of
// core/, and the registry (exp/registry.cpp) wires {gurita, stream,
// baraat} in.
#pragma once

#include <memory>
#include <vector>

#include "common/units.h"
#include "flowsim/scheduler.h"
#include "obs/registry.h"

namespace gurita {

class AdaptiveScheduler final : public Scheduler {
 public:
  struct Config {
    Time update_interval = 8 * kMillisecond;  ///< δ, matching the children
    double feature_alpha = 0.25;  ///< EWMA step of the arrival features
    /// Mean stage depth at or above which the workload counts as deep
    /// (multi-faced Gurita); below `shallow_stages` it counts as shallow
    /// (Stream / Baraat). The band in between is a hysteresis dead zone:
    /// the current choice persists.
    double deep_stages = 2.5;
    double shallow_stages = 1.5;
    /// Shallow workloads with at least this many live jobs are treated as
    /// bursty: Baraat's FIFO-LM replaces Stream.
    int bursty_jobs = 16;
    /// Decayed faults-per-tick level at which the choice is pinned to the
    /// primary child (Gurita's HR reset re-learns fastest after resets).
    double fault_pressure = 0.5;
    /// Consecutive ticks a new choice must persist before the switch.
    int hysteresis_ticks = 2;
    /// Weight boost for flows the secondary policy would serve first.
    double blend_boost = 0.25;
  };

  /// `children` must be non-empty; children[0] is the initial (and
  /// fault-pressure) choice. With the registry wiring: 0 = gurita,
  /// 1 = stream, 2 = baraat. Fewer children degrade gracefully — a
  /// one-child adaptive is a forwarding wrapper.
  AdaptiveScheduler(const Config& config,
                    std::vector<std::unique_ptr<Scheduler>> children);

  [[nodiscard]] std::string name() const override { return "adaptive"; }

  void attach(const SimState& state) override;
  void on_job_arrival(const SimJob& job, Time now) override;
  void on_coflow_release(const SimCoflow& coflow, Time now) override;
  void on_flow_finish(const SimFlow& flow, Time now) override;
  void on_coflow_finish(const SimCoflow& coflow, Time now) override;
  void on_job_finish(const SimJob& job, Time now) override;
  /// kSchedulerStateLoss additionally clears the learned features (the
  /// contract of flowsim/scheduler.h: drop learned control state).
  void on_fault(const FaultEvent& event, Time now) override;
  void on_recover(const FaultEvent& event, Time now) override;
  void on_job_fail(const SimJob& job, Time now) override;
  void on_compact(const CompactionRemap& remap) override;

  [[nodiscard]] Time tick_interval() const override {
    return config_.update_interval;
  }
  bool on_tick(Time now) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;
  void set_trace_recorder(obs::TraceRecorder* recorder) override;

  /// The feature store the tick decision reads: gauges
  /// adaptive.stages_ewma / adaptive.width_ewma / adaptive.active_jobs /
  /// adaptive.fault_pressure, counters adaptive.jobs_seen /
  /// adaptive.switches / adaptive.faults.
  [[nodiscard]] const obs::Registry& features() const { return features_; }
  /// Name of the currently active child policy.
  [[nodiscard]] std::string active_child() const;

 private:
  [[nodiscard]] std::size_t desired_child() const;
  void refresh_features();
  void reset_features();

  Config config_;
  std::vector<std::unique_ptr<Scheduler>> children_;
  obs::Registry features_;

  std::size_t active_ = 0;
  std::size_t pending_ = 0;
  int pending_ticks_ = 0;

  // Learned workload features (no id-keyed state: compaction-proof).
  double stages_ewma_ = 0;
  double width_ewma_ = 0;
  double fault_ewma_ = 0;
  std::uint64_t jobs_seen_ = 0;
  std::uint64_t active_jobs_ = 0;
  std::uint64_t faults_since_tick_ = 0;
  std::uint64_t switches_ = 0;

  /// Scratch of assign(): secondary tiers, parallel to the active list.
  std::vector<Tier> secondary_tier_;
};

}  // namespace gurita
