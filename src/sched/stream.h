// Stream — decentralized opportunistic inter-coflow scheduling (Susanto et
// al., ICNP'16), the paper's representative of decentralized
// total-bytes-sent schemes.
//
// A job starts at the highest priority and is demoted as its *accumulated
// total bytes sent across all stages* crosses exponentially spaced
// thresholds; enforcement is SPQ. This is precisely the behaviour the paper
// criticizes: a job that ships many bytes in early stages keeps its low
// priority in later stages even if those stages are tiny ("Stream requires
// larger jobs to transmit at lower priority regardless of the amount of
// bytes sent per stage", §V).
//
// Decentralization is modeled by refreshing the TBS signal only at the
// update interval δ, like Gurita's receivers do.
#pragma once

#include <unordered_map>

#include "common/units.h"
#include "flowsim/scheduler.h"
#include "sched/thresholds.h"

namespace gurita {

class StreamScheduler final : public Scheduler {
 public:
  struct Config {
    int queues = 4;               ///< priority queues (paper uses four)
    Bytes first_threshold = 10 * kMB;
    double multiplier = 10.0;     ///< exponential spacing
    Time update_interval = 8 * kMillisecond;  ///< receiver refresh period
  };

  StreamScheduler() : StreamScheduler(Config{}) {}
  explicit StreamScheduler(const Config& config)
      : config_(config),
        thresholds_(config.queues, config.first_threshold, config.multiplier) {}

  [[nodiscard]] std::string name() const override { return "stream"; }

  [[nodiscard]] Time tick_interval() const override {
    return config_.update_interval;
  }
  bool on_tick(Time now) override;
  void on_job_arrival(const SimJob& job, Time now) override;
  /// Re-keys the per-job queue table across an engine compaction (also
  /// drops finished jobs' leftover entries).
  void on_compact(const CompactionRemap& remap) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;
  /// Checkpoint hooks (DESIGN.md §12): the stale per-job queue table,
  /// serialized in sorted-key order (on_tick's per-entry updates are
  /// order-independent, so the map itself may stay unordered).
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  Config config_;
  ExpThresholds thresholds_;
  /// Job priority as of the last δ refresh (stale between ticks).
  std::unordered_map<JobId, int> queue_of_;
};

}  // namespace gurita
