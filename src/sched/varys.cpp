#include "sched/varys.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace gurita {

Bytes VarysScheduler::bottleneck_bytes(
    const std::vector<const SimFlow*>& flows, Time now) {
  std::unordered_map<int, Bytes> out_port;  // per src host
  std::unordered_map<int, Bytes> in_port;   // per dst host
  for (const SimFlow* f : flows) {
    // Bytes drain lazily from each flow's last settle point, so the
    // clairvoyant residual must be extrapolated to the query time.
    const Bytes remaining = f->remaining_at(now);
    out_port[f->src_host] += remaining;
    in_port[f->dst_host] += remaining;
  }
  Bytes bottleneck = 0;
  for (const auto& [host, bytes] : out_port)
    bottleneck = std::max(bottleneck, bytes);
  for (const auto& [host, bytes] : in_port)
    bottleneck = std::max(bottleneck, bytes);
  return bottleneck;
}

void VarysScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  // Group active flows by coflow and compute each coflow's remaining Γ.
  std::map<std::uint64_t, std::vector<const SimFlow*>> by_coflow;
  for (const SimFlow* f : active) {
    const CoflowId cid = state().job(f->job).coflows[f->coflow_index];
    by_coflow[cid.value()].push_back(f);
  }

  // SEBF: ascending Γ; ties broken by coflow id for determinism.
  std::vector<std::pair<double, std::uint64_t>> order;
  order.reserve(by_coflow.size());
  for (const auto& [cid, flows] : by_coflow)
    order.emplace_back(bottleneck_bytes(flows, now) / config_.port_rate, cid);
  std::sort(order.begin(), order.end());

  std::unordered_map<std::uint64_t, Tier> tier_of;
  Tier tier = 0;
  for (const auto& [gamma, cid] : order) {
    (void)gamma;
    tier_of[cid] = tier++;
  }

  for (SimFlow* f : active) {
    const CoflowId cid = state().job(f->job).coflows[f->coflow_index];
    f->tier = tier_of.at(cid.value());
    f->weight = 1.0;
  }
}

}  // namespace gurita
