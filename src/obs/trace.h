// Structured simulation trace recorder.
//
// The paper's evaluation (Figs. 5–8) rests on *why* LBEF ranks one job's Ψ̈
// below another's and on which priority queue each coflow occupies over
// time. This module records exactly those decisions as typed records — flow
// release / rate-change / finish, coflow queue transitions with the Ψ̈
// factor breakdown (ω̈, ε̈, ℓ̈_max, n̈ and the critical-path discount) that
// produced them, DAG stage releases, WRR starvation weights, capacity
// changes — into a preallocated append buffer, exportable as JSONL or a
// compact binary stream (examples/trace_explorer reads both).
//
// Cost contract (DESIGN.md §10): when no recorder is attached the engine's
// only overhead is one pointer null-check per emission site; when a
// recorder is attached but the record's kind is filtered out, the overhead
// is the header-inlined `wants()` bit test — no record is built and nothing
// allocates. Enabled emission appends to a vector reserved in chunks, so
// the amortized hot-path cost is a bounds check and a memcpy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace gurita::obs {

/// Kind of one trace record. The underlying values are part of the binary
/// export format — append new kinds, never renumber.
enum class TraceEventKind : std::uint8_t {
  kJobArrival = 0,        ///< job submitted its first coflows
  kCoflowRelease = 1,     ///< DAG dependencies met; the coflow's flows start
  kFlowRelease = 2,       ///< one flow entered the active set
  kFlowRateChange = 3,    ///< the allocator moved a flow's rate
  kFlowFinish = 4,        ///< a flow drained
  kCoflowFinish = 5,      ///< all flows of a coflow drained
  kStageComplete = 6,     ///< a job's completed-stage count advanced
  kJobFinish = 7,         ///< all coflows of a job drained
  kQueueChange = 8,       ///< scheduler moved a coflow between priority queues
  kStarvationWeights = 9, ///< WRR weights emulating SPQ (starvation mitigation)
  kCapacityChange = 10,   ///< failure injection changed a link capacity
  kHeavyMark = 11,        ///< FIFO-LM (Baraat) reclassified a job as heavy
  kFault = 12,            ///< a fault-plan event fired (fault/fault.h)
  kFlowAbort = 13,        ///< a fault aborted a flow; in-flight bytes lost
  kFlowRetry = 14,        ///< an aborted flow restarted from byte zero
  kJobFail = 15,          ///< a job exhausted retries and was abandoned
  kSample = 16,           ///< periodic run-health sample (obs/sampler.h)
  kMemSample = 17,        ///< periodic per-subsystem memory sample
  kWallSample = 18,       ///< opt-in wall-clock sample; NOT deterministic
  // --- open-horizon service records (src/service/, DESIGN.md §15) ---
  kAdmit = 19,            ///< daemon admitted a streamed job into the engine
  kShed = 20,             ///< admission control dropped a job (load shedding)
  kDrainStart = 21,       ///< drain began: admissions stopped
  kCompact = 22,          ///< engine evicted terminal state (compact())
  kDegrade = 23,          ///< degrade-to-fifo mode entered (i0=1) / left (0)
};

inline constexpr int kNumTraceEventKinds = 24;

/// Why a scheduler changed a coflow's queue (TraceRecord::i2 of
/// kQueueChange records).
enum class QueueChangeCause : std::int32_t {
  kRelease = 0,     ///< initial highest-priority assignment at release
  kHrDecision = 1,  ///< Gurita head-receiver δ-round demotion (LBEF)
  kSelfDemote = 2,  ///< Gurita receiver-local threshold demotion
  kBytesSent = 3,   ///< Aalo D-CLAS bytes-sent demotion
  kRecompute = 4,   ///< GuritaPlus clairvoyant re-evaluation (both ways)
  kFaultReset = 5,  ///< scheduler-state loss re-admitted it at the top queue
};

/// Sentinel for "no entity" in a record's id fields.
inline constexpr std::uint64_t kNoTraceId = ~0ULL;

/// One typed trace record. Fixed-size POD so the recorder buffer is a flat
/// array and the binary export is a plain field dump. Field meaning is
/// kind-specific (see the JSONL field table in trace.cpp); unused fields
/// keep their defaults so serialization is deterministic.
struct TraceRecord {
  Time time = 0;
  std::uint64_t job = kNoTraceId;
  std::uint64_t coflow = kNoTraceId;
  std::uint64_t flow = kNoTraceId;
  /// Kind-specific scalars. For kQueueChange: v0 = ω̈, v1 = ε̈,
  /// v2 = ℓ̈_max (bytes), v3 = n̈ (width), v4 = applied critical-path
  /// discount (1 − β·α; 1.0 off the critical path), v5 = the Ψ̈ decision
  /// value that was thresholded.
  double v0 = 0, v1 = 0, v2 = 0, v3 = 0, v4 = 0, v5 = 0;
  /// Kind-specific small integers. For kQueueChange: i0 = old queue
  /// (-1 at release), i1 = new queue, i2 = QueueChangeCause.
  std::int32_t i0 = -1, i1 = -1, i2 = -1;
  TraceEventKind kind = TraceEventKind::kJobArrival;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Printable name of a record kind ("queue_change", "flow_finish", ...).
[[nodiscard]] const char* kind_name(TraceEventKind kind);
/// Inverse of kind_name; throws std::logic_error on an unknown name.
[[nodiscard]] TraceEventKind kind_from_name(const std::string& name);

/// Bitmask helpers for kind filtering.
[[nodiscard]] constexpr std::uint32_t mask_of(TraceEventKind kind) {
  return 1u << static_cast<unsigned>(kind);
}

/// Parses a --trace-filter value: a comma-separated list of kind names, or
/// "all" / "default". Throws std::logic_error on an unknown kind name.
[[nodiscard]] std::uint32_t parse_trace_filter(const std::string& csv);

/// Append-buffer of trace records with a kind filter.
class TraceRecorder {
 public:
  /// Every kind.
  static constexpr std::uint32_t kAllKinds =
      (1u << kNumTraceEventKinds) - 1u;
  /// Every kind except the two per-recomputation firehoses (flow rate
  /// changes and WRR weight snapshots), which dominate trace volume without
  /// carrying scheduling decisions, and the periodic sampler kinds, which
  /// only fire when an IntervalSampler is attached (--timeline /
  /// --timeline-wall opt into their mask bits). Opt in via --trace-filter.
  static constexpr std::uint32_t kDefaultKinds =
      kAllKinds & ~mask_of(TraceEventKind::kFlowRateChange) &
      ~mask_of(TraceEventKind::kStarvationWeights) &
      ~mask_of(TraceEventKind::kSample) &
      ~mask_of(TraceEventKind::kMemSample) &
      ~mask_of(TraceEventKind::kWallSample);
  /// The sim-time-driven sampler kinds (deterministic; fingerprinted like
  /// any other trace record).
  static constexpr std::uint32_t kTimelineKinds =
      mask_of(TraceEventKind::kSample) | mask_of(TraceEventKind::kMemSample);

  explicit TraceRecorder(std::uint32_t mask = kDefaultKinds,
                         std::size_t max_records = 0)
      : mask_(mask), max_records_(max_records) {
    records_.reserve(kInitialReserve);
  }

  /// True when records of `kind` are being kept. Inline so emission sites
  /// compile to a bit test.
  [[nodiscard]] bool wants(TraceEventKind kind) const {
    return (mask_ & mask_of(kind)) != 0;
  }

  /// Appends `record` if its kind passes the filter. When a record cap is
  /// configured and reached, further records are counted as dropped
  /// instead of appended (the kept prefix stays contiguous in time).
  void emit(const TraceRecord& record) {
    if (!wants(record.kind)) return;
    if (max_records_ != 0 && records_.size() >= max_records_) {
      ++dropped_;
      return;
    }
    records_.push_back(record);
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint32_t mask() const { return mask_; }

  /// Moves the buffer out (the recorder is empty afterwards).
  [[nodiscard]] std::vector<TraceRecord> take() {
    std::vector<TraceRecord> out = std::move(records_);
    records_.clear();
    return out;
  }

  /// Refills the buffer from a checkpoint (snapshot/, DESIGN.md §12):
  /// subsequent emissions append after the restored prefix, so a resumed
  /// run's export is a seamless continuation of the original's. The mask
  /// and record cap are construction-time config and must match the
  /// checkpointed run's (the snapshot fingerprint enforces the mask).
  void restore(std::vector<TraceRecord> records, std::uint64_t dropped) {
    records_ = std::move(records);
    dropped_ = dropped;
  }

 private:
  static constexpr std::size_t kInitialReserve = 1 << 12;
  std::uint32_t mask_;
  std::size_t max_records_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

/// A labeled run of records, as read back from an exported trace.
struct TraceSection {
  std::string label;
  std::vector<TraceRecord> records;
};

/// Writes one JSON object per record, one per line, with kind-specific
/// field names (the same table read_jsonl parses). `source`, when
/// non-empty, is emitted as a "section" field on every line so multi-run
/// exports stay attributable ("src" is taken: it is flow_release's source
/// host). Doubles use max_digits10, so equal records serialize to
/// byte-identical lines.
void write_jsonl(std::ostream& out, const std::vector<TraceRecord>& records,
                 const std::string& source = "");

/// Reads a JSONL trace written by write_jsonl, grouping consecutive lines
/// by their "section" field. Throws std::logic_error on a malformed line.
[[nodiscard]] std::vector<TraceSection> read_jsonl(std::istream& in);

/// Compact binary export: call write_binary_header once, then one
/// write_binary_section per labeled record run. Fields are dumped in fixed
/// order (no struct padding), native endianness.
void write_binary_header(std::ostream& out);
void write_binary_section(std::ostream& out, const std::string& label,
                          const std::vector<TraceRecord>& records);
/// Reads a stream produced by the two writers above. Throws
/// std::logic_error on a bad magic/version or a truncated section.
[[nodiscard]] std::vector<TraceSection> read_binary(std::istream& in);

class Registry;
/// Folds per-kind record counts ("trace.<kind>") and the dropped-record
/// count ("trace.dropped") into `registry`.
void export_trace_counters(const std::vector<TraceRecord>& records,
                           std::uint64_t dropped, Registry& registry);

}  // namespace gurita::obs
