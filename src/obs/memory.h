// Per-subsystem memory accounting for the simulator's large containers.
//
// Unlike the sampler's kMemSample records — which report *logical* live
// bytes (element counts x element size) so they stay deterministic across
// buffer-pool reuse and checkpoint/restore — the accountant tracks the
// *reserved* footprint (vector capacities), i.e. what the process actually
// holds, including SimBufferPool idle capacity and the allocator's
// membership/scratch arrays. Reserved capacity depends on allocation
// history, so the accountant is diagnostics-only: it is never serialized,
// never fingerprinted, and only surfaces in exports behind --diagnostics
// (DESIGN.md §14). The engine feeds it at sample boundaries and at
// collect(); peaks merge by max across runs, matching gauge semantics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace gurita::obs {

class Registry;

class MemoryAccountant {
 public:
  enum class Subsystem : int {
    kState = 0,       ///< flow/coflow/job stores, aggregates, flow paths
    kCalendar = 1,    ///< completion calendar heap array
    kAllocator = 2,   ///< membership lists, mirrors, scratch (allocator.h)
    kTrace = 3,       ///< trace recorder buffer
    kActiveSet = 4,   ///< active set + position/generation tables
    kFaultRuntime = 5 ///< parked/retry/fault-plan runtime vectors
  };
  static constexpr int kNumSubsystems = 6;

  [[nodiscard]] static const char* subsystem_name(Subsystem s);

  /// Records the current reserved bytes of `s`, folding the per-subsystem
  /// peak and the peak of the total across all subsystems.
  void observe(Subsystem s, std::uint64_t bytes) {
    current_[static_cast<std::size_t>(s)] = bytes;
    auto& peak = peak_[static_cast<std::size_t>(s)];
    if (bytes > peak) peak = bytes;
    std::uint64_t total = 0;
    for (const std::uint64_t c : current_) total += c;
    if (total > peak_total_) peak_total_ = total;
  }

  [[nodiscard]] std::uint64_t current(Subsystem s) const {
    return current_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t peak(Subsystem s) const {
    return peak_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t peak_total() const { return peak_total_; }

  /// Max-folds another accountant's peaks in (current values are run-local
  /// and not merged) — the pooling shape ComparisonResult::absorb uses.
  void merge(const MemoryAccountant& other) {
    for (std::size_t i = 0; i < peak_.size(); ++i)
      if (other.peak_[i] > peak_[i]) peak_[i] = other.peak_[i];
    if (other.peak_total_ > peak_total_) peak_total_ = other.peak_total_;
  }

  /// Gauges "mem.<subsystem>.peak_bytes" and "mem.total.peak_bytes" —
  /// gauge max-merge preserves peak semantics across shards.
  void export_to(Registry& registry) const;

 private:
  std::array<std::uint64_t, kNumSubsystems> current_{};
  std::array<std::uint64_t, kNumSubsystems> peak_{};
  std::uint64_t peak_total_ = 0;
};

}  // namespace gurita::obs
