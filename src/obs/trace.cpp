#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

#include "obs/registry.h"

namespace gurita::obs {

namespace {

/// Which slot of TraceRecord a kind-specific JSONL field maps to. One table
/// drives both the writer and the parser, so the two cannot drift.
enum Slot : int { kI0, kI1, kI2, kV0, kV1, kV2, kV3, kV4, kV5 };

struct FieldSpec {
  const char* name;
  Slot slot;
};

struct KindSpec {
  const char* name;
  bool has_job, has_coflow, has_flow;
  std::vector<FieldSpec> fields;
};

const KindSpec& kind_spec(TraceEventKind kind) {
  static const std::vector<KindSpec> specs = {
      /* kJobArrival */ {"job_arrival", true, false, false, {{"stages", kI0}}},
      /* kCoflowRelease */
      {"coflow_release", true, true, false, {{"stage", kI0}, {"width", kI1}}},
      /* kFlowRelease */
      {"flow_release",
       true,
       true,
       true,
       {{"src", kI0}, {"dst", kI1}, {"size", kV0}}},
      /* kFlowRateChange */
      {"flow_rate_change",
       true,
       true,
       true,
       {{"old_rate", kV0}, {"new_rate", kV1}}},
      /* kFlowFinish */ {"flow_finish", true, true, true, {{"size", kV0}}},
      /* kCoflowFinish */
      {"coflow_finish", true, true, false, {{"stage", kI0}, {"release", kV0}}},
      /* kStageComplete */
      {"stage_complete", true, false, false, {{"stage", kI0}}},
      /* kJobFinish */ {"job_finish", true, false, false, {{"arrival", kV0}}},
      /* kQueueChange */
      {"queue_change",
       true,
       true,
       false,
       {{"old", kI0},
        {"new", kI1},
        {"cause", kI2},
        {"omega", kV0},
        {"epsilon", kV1},
        {"ell_max", kV2},
        {"n", kV3},
        {"cp_discount", kV4},
        {"psi", kV5}}},
      /* kStarvationWeights */
      {"starvation_weights",
       false,
       false,
       false,
       {{"queues", kI0}, {"w0", kV0}, {"w1", kV1}, {"w2", kV2}, {"w3", kV3}}},
      /* kCapacityChange */
      {"capacity_change", false, false, false, {{"link", kI0}, {"capacity", kV0}}},
      /* kHeavyMark */ {"heavy_mark", true, false, false, {{"bytes", kV0}}},
      /* kFault */
      {"fault",
       false,
       false,
       false,
       {{"fault_kind", kI0}, {"host", kI1}, {"link", kI2}, {"factor", kV0}}},
      /* kFlowAbort */
      {"flow_abort",
       true,
       true,
       true,
       {{"lost", kV0}, {"attempt", kI0}, {"cause", kI1}}},
      /* kFlowRetry */
      {"flow_retry",
       true,
       true,
       true,
       {{"attempt", kI0}, {"latency", kV0}}},
      /* kJobFail */
      {"job_fail",
       true,
       false,
       false,
       {{"cancelled_coflows", kI0},
        {"cancelled_running", kI1},
        {"cancelled_parked", kI2},
        {"arrival", kV0}}},
      /* kSample */
      {"sample",
       false,
       false,
       false,
       {{"active_flows", kI0},
        {"active_coflows", kI1},
        {"active_jobs", kI2},
        {"events", kV0},
        {"events_per_sec", kV1},
        {"calendar", kV2},
        {"flow_touches", kV3},
        {"rate_recomputations", kV4},
        {"trace_records", kV5}}},
      /* kMemSample */
      {"mem_sample",
       false,
       false,
       false,
       {{"state_bytes", kV0},
        {"calendar_bytes", kV1},
        {"retry_bytes", kV2},
        {"trace_bytes", kV3},
        {"active_set_bytes", kV4},
        {"total_bytes", kV5}}},
      /* kWallSample */
      {"wall_sample",
       false,
       false,
       false,
       {{"wall_ms", kV0}, {"events", kV1}, {"events_per_wall_sec", kV2}}},
      /* kAdmit */
      {"admit",
       true,
       true,
       false,
       {{"arrival", kV0}, {"queue_wait", kV1}, {"queue_depth", kI0}}},
      /* kShed */
      {"shed",
       true,
       false,
       false,
       {{"policy", kI0},
        {"reason", kI1},
        {"queue_depth", kI2},
        {"bytes", kV0},
        {"arrival", kV1}}},
      /* kDrainStart */
      {"drain_start",
       false,
       false,
       false,
       {{"cause", kI0}, {"queued", kI1}}},
      /* kCompact */
      {"compact",
       false,
       false,
       false,
       {{"jobs_evicted", kI0},
        {"coflows_evicted", kI1},
        {"flows_evicted", kI2},
        {"jobs_live", kV0}}},
      /* kDegrade */
      {"degrade",
       false,
       false,
       false,
       {{"entered", kI0}, {"queue_depth", kI1}}},
  };
  const auto index = static_cast<std::size_t>(kind);
  GURITA_CHECK_MSG(index < specs.size(), "unknown trace event kind");
  return specs[index];
}

double get_slot(const TraceRecord& r, Slot slot) {
  switch (slot) {
    case kI0: return r.i0;
    case kI1: return r.i1;
    case kI2: return r.i2;
    case kV0: return r.v0;
    case kV1: return r.v1;
    case kV2: return r.v2;
    case kV3: return r.v3;
    case kV4: return r.v4;
    case kV5: return r.v5;
  }
  return 0;
}

void set_slot(TraceRecord& r, Slot slot, double value) {
  switch (slot) {
    case kI0: r.i0 = static_cast<std::int32_t>(value); break;
    case kI1: r.i1 = static_cast<std::int32_t>(value); break;
    case kI2: r.i2 = static_cast<std::int32_t>(value); break;
    case kV0: r.v0 = value; break;
    case kV1: r.v1 = value; break;
    case kV2: r.v2 = value; break;
    case kV3: r.v3 = value; break;
    case kV4: r.v4 = value; break;
    case kV5: r.v5 = value; break;
  }
}

bool slot_is_int(Slot slot) { return slot == kI0 || slot == kI1 || slot == kI2; }

/// %.17g: shortest representation that round-trips a double bit-exactly
/// through strtod, and deterministic for a given bit pattern — the
/// byte-identity half of the trace determinism contract rides on this.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

const char* kind_name(TraceEventKind kind) { return kind_spec(kind).name; }

TraceEventKind kind_from_name(const std::string& name) {
  for (int k = 0; k < kNumTraceEventKinds; ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (name == kind_spec(kind).name) return kind;
  }
  GURITA_CHECK_MSG(false, "unknown trace event kind: " + name);
  return TraceEventKind::kJobArrival;  // unreachable
}

std::uint32_t parse_trace_filter(const std::string& csv) {
  if (csv == "all") return TraceRecorder::kAllKinds;
  if (csv == "default") return TraceRecorder::kDefaultKinds;
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string item = csv.substr(start, end - start);
    GURITA_CHECK_MSG(!item.empty(), "empty entry in trace filter: " + csv);
    mask |= mask_of(kind_from_name(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  GURITA_CHECK_MSG(mask != 0, "trace filter selects no kinds: " + csv);
  return mask;
}

void write_jsonl(std::ostream& out, const std::vector<TraceRecord>& records,
                 const std::string& source) {
  std::string line;
  for (const TraceRecord& r : records) {
    const KindSpec& spec = kind_spec(r.kind);
    line.clear();
    line += "{\"t\":";
    append_double(line, r.time);
    line += ",\"kind\":\"";
    line += spec.name;
    line += '"';
    if (!source.empty()) {
      line += ",\"section\":\"";
      append_escaped(line, source);
      line += '"';
    }
    char buf[32];
    if (spec.has_job && r.job != kNoTraceId) {
      std::snprintf(buf, sizeof(buf), ",\"job\":%" PRIu64, r.job);
      line += buf;
    }
    if (spec.has_coflow && r.coflow != kNoTraceId) {
      std::snprintf(buf, sizeof(buf), ",\"coflow\":%" PRIu64, r.coflow);
      line += buf;
    }
    if (spec.has_flow && r.flow != kNoTraceId) {
      std::snprintf(buf, sizeof(buf), ",\"flow\":%" PRIu64, r.flow);
      line += buf;
    }
    for (const FieldSpec& f : spec.fields) {
      line += ",\"";
      line += f.name;
      line += "\":";
      if (slot_is_int(f.slot)) {
        std::snprintf(buf, sizeof(buf), "%d",
                      static_cast<int>(get_slot(r, f.slot)));
        line += buf;
      } else {
        append_double(line, get_slot(r, f.slot));
      }
    }
    line += "}\n";
    out << line;
  }
}

namespace {

/// Minimal parser for the flat JSON objects write_jsonl produces: string
/// and number values only, no nesting. Not a general JSON parser.
struct JsonLine {
  std::vector<std::pair<std::string, std::string>> pairs;  ///< raw values
};

JsonLine parse_flat_json(const std::string& line) {
  JsonLine out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto expect = [&](char c) {
    GURITA_CHECK_MSG(i < line.size() && line[i] == c,
                     "malformed trace JSONL near position " +
                         std::to_string(i) + ": " + line);
    ++i;
  };
  const auto parse_string = [&]() -> std::string {
    expect('"');
    std::string s;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      s += line[i++];
    }
    expect('"');
    return s;
  };
  skip_ws();
  expect('{');
  skip_ws();
  while (i < line.size() && line[i] != '}') {
    const std::string key = parse_string();
    skip_ws();
    expect(':');
    skip_ws();
    std::string value;
    if (line[i] == '"') {
      value = parse_string();
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}')
        value += line[i++];
    }
    out.pairs.emplace_back(key, value);
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      skip_ws();
    }
  }
  expect('}');
  return out;
}

}  // namespace

std::vector<TraceSection> read_jsonl(std::istream& in) {
  std::vector<TraceSection> sections;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonLine parsed = parse_flat_json(line);
    TraceRecord r;
    std::string src;
    bool have_kind = false;
    for (const auto& [key, value] : parsed.pairs) {
      if (key == "kind") {
        r.kind = kind_from_name(value);
        have_kind = true;
      } else if (key == "section") {
        src = value;
      }
    }
    GURITA_CHECK_MSG(have_kind, "trace line without kind: " + line);
    const KindSpec& spec = kind_spec(r.kind);
    for (const auto& [key, value] : parsed.pairs) {
      if (key == "kind" || key == "section") continue;
      if (key == "t") {
        r.time = std::strtod(value.c_str(), nullptr);
      } else if (key == "job") {
        r.job = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "coflow") {
        r.coflow = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "flow") {
        r.flow = std::strtoull(value.c_str(), nullptr, 10);
      } else {
        bool known = false;
        for (const FieldSpec& f : spec.fields) {
          if (key == f.name) {
            set_slot(r, f.slot, std::strtod(value.c_str(), nullptr));
            known = true;
            break;
          }
        }
        GURITA_CHECK_MSG(known, "unknown field \"" + key + "\" for kind " +
                                    spec.name + ": " + line);
      }
    }
    if (sections.empty() || sections.back().label != src)
      sections.push_back(TraceSection{src, {}});
    sections.back().records.push_back(r);
  }
  return sections;
}

namespace {

constexpr std::uint32_t kBinaryMagic = 0x53424F47u;  // "GOBS" little-endian
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

}  // namespace

void write_binary_header(std::ostream& out) {
  put(out, kBinaryMagic);
  put(out, kBinaryVersion);
}

void write_binary_section(std::ostream& out, const std::string& label,
                          const std::vector<TraceRecord>& records) {
  put(out, static_cast<std::uint32_t>(label.size()));
  out.write(label.data(), static_cast<std::streamsize>(label.size()));
  put(out, static_cast<std::uint64_t>(records.size()));
  for (const TraceRecord& r : records) {
    // Field-by-field dump: no struct padding bytes reach the stream.
    put(out, r.time);
    put(out, r.job);
    put(out, r.coflow);
    put(out, r.flow);
    put(out, r.v0);
    put(out, r.v1);
    put(out, r.v2);
    put(out, r.v3);
    put(out, r.v4);
    put(out, r.v5);
    put(out, r.i0);
    put(out, r.i1);
    put(out, r.i2);
    put(out, static_cast<std::uint8_t>(r.kind));
  }
}

std::vector<TraceSection> read_binary(std::istream& in) {
  std::uint32_t magic = 0, version = 0;
  GURITA_CHECK_MSG(get(in, magic) && magic == kBinaryMagic,
                   "not a gurita binary trace (bad magic)");
  GURITA_CHECK_MSG(get(in, version) && version == kBinaryVersion,
                   "unsupported binary trace version");
  std::vector<TraceSection> sections;
  std::uint32_t label_len = 0;
  while (get(in, label_len)) {
    TraceSection section;
    section.label.resize(label_len);
    in.read(section.label.data(), static_cast<std::streamsize>(label_len));
    std::uint64_t count = 0;
    GURITA_CHECK_MSG(static_cast<bool>(in) && get(in, count),
                     "truncated binary trace section header");
    section.records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      TraceRecord r;
      std::uint8_t kind = 0;
      const bool ok = get(in, r.time) && get(in, r.job) && get(in, r.coflow) &&
                      get(in, r.flow) && get(in, r.v0) && get(in, r.v1) &&
                      get(in, r.v2) && get(in, r.v3) && get(in, r.v4) &&
                      get(in, r.v5) && get(in, r.i0) && get(in, r.i1) &&
                      get(in, r.i2) && get(in, kind);
      GURITA_CHECK_MSG(ok, "truncated binary trace record");
      GURITA_CHECK_MSG(kind < kNumTraceEventKinds,
                       "binary trace record with unknown kind");
      r.kind = static_cast<TraceEventKind>(kind);
      section.records.push_back(r);
    }
    sections.push_back(std::move(section));
  }
  return sections;
}

void export_trace_counters(const std::vector<TraceRecord>& records,
                           std::uint64_t dropped, Registry& registry) {
  for (const TraceRecord& r : records)
    registry.add(std::string("trace.") + kind_name(r.kind));
  if (dropped > 0) registry.add("trace.dropped", dropped);
}

}  // namespace gurita::obs
