#include "obs/memory.h"

#include <string>

#include "obs/registry.h"

namespace gurita::obs {

const char* MemoryAccountant::subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kState: return "state";
    case Subsystem::kCalendar: return "calendar";
    case Subsystem::kAllocator: return "allocator";
    case Subsystem::kTrace: return "trace";
    case Subsystem::kActiveSet: return "active_set";
    case Subsystem::kFaultRuntime: return "fault_runtime";
  }
  return "?";
}

void MemoryAccountant::export_to(Registry& registry) const {
  for (int s = 0; s < kNumSubsystems; ++s) {
    registry.set_gauge(
        std::string("mem.") + subsystem_name(static_cast<Subsystem>(s)) +
            ".peak_bytes",
        static_cast<double>(peak_[static_cast<std::size_t>(s)]));
  }
  registry.set_gauge("mem.total.peak_bytes",
                     static_cast<double>(peak_total_));
}

}  // namespace gurita::obs
