#include "obs/chrome_trace.h"

#include <cstdio>

namespace gurita::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Emits one counter event: {"name":..., "ph":"C", "pid":..., "ts":...,
/// "args":{...}} with args supplied by the caller via a callback-free
/// key/value list.
void emit_counter(std::string& line, std::ostream& out, bool& first, int pid,
                  const char* name, double ts_us,
                  const std::vector<std::pair<const char*, double>>& args) {
  line.clear();
  line += first ? "\n" : ",\n";
  first = false;
  line += "  {\"name\": \"";
  line += name;
  line += "\", \"ph\": \"C\", \"pid\": ";
  line += std::to_string(pid);
  line += ", \"tid\": 0, \"ts\": ";
  append_double(line, ts_us);
  line += ", \"args\": {";
  bool first_arg = true;
  for (const auto& [key, value] : args) {
    if (!first_arg) line += ", ";
    line += '"';
    line += key;
    line += "\": ";
    append_double(line, value);
    first_arg = false;
  }
  line += "}}";
  out << line;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<ChromeTrack>& tracks) {
  out << "{\"traceEvents\": [";
  bool first = true;
  std::string line;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const ChromeTrack& track = tracks[i];
    const int pid = static_cast<int>(i) + 1;

    line.clear();
    line += first ? "\n" : ",\n";
    first = false;
    line += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    line += std::to_string(pid);
    line += ", \"args\": {\"name\": \"";
    append_escaped(line, track.name);
    line += "\"}}";
    out << line;

    for (const PhaseSpan& span : track.spans) {
      if (span.phase < 0 || span.phase >= kNumPhases) continue;
      line.clear();
      line += ",\n  {\"name\": \"";
      line += phase_name(static_cast<Phase>(span.phase));
      line += "\", \"ph\": \"X\", \"pid\": ";
      line += std::to_string(pid);
      line += ", \"tid\": 0, \"ts\": ";
      append_double(line, static_cast<double>(span.start_ns) / 1e3);
      line += ", \"dur\": ";
      append_double(line,
                    static_cast<double>(span.end_ns - span.start_ns) / 1e3);
      line += "}";
      out << line;
    }

    for (const TraceRecord& r : track.samples) {
      // Sim-time tracks: simulation seconds rendered as microseconds.
      const double ts_us = r.time * 1e6;
      if (r.kind == TraceEventKind::kSample) {
        emit_counter(line, out, first, pid, "active (sim-time)", ts_us,
                     {{"flows", static_cast<double>(r.i0)},
                      {"coflows", static_cast<double>(r.i1)},
                      {"jobs", static_cast<double>(r.i2)}});
        emit_counter(line, out, first, pid, "events_per_sec (sim-time)",
                     ts_us, {{"events_per_sec", r.v1}});
        emit_counter(line, out, first, pid, "calendar (sim-time)", ts_us,
                     {{"entries", r.v2}});
      } else if (r.kind == TraceEventKind::kMemSample) {
        emit_counter(line, out, first, pid, "live_bytes (sim-time)", ts_us,
                     {{"state", r.v0},
                      {"calendar", r.v1},
                      {"retry", r.v2},
                      {"trace", r.v3},
                      {"active_set", r.v4}});
      } else if (r.kind == TraceEventKind::kWallSample) {
        // Wall tracks use the wall clock itself as their timestamp.
        emit_counter(line, out, first, pid, "events_per_wall_sec", r.v0 * 1e3,
                     {{"events_per_wall_sec", r.v2}});
      }
    }
  }
  out << (first ? "]}\n" : "\n]}\n");
}

}  // namespace gurita::obs
