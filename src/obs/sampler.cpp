#include "obs/sampler.h"

namespace gurita::obs {

void IntervalSampler::emit(TraceRecorder& sink, const SimSample& sim,
                           const MemSample& mem) {
  const Time t = next_due();

  TraceRecord s;
  s.kind = TraceEventKind::kSample;
  s.time = t;
  s.i0 = static_cast<std::int32_t>(sim.active_flows);
  s.i1 = static_cast<std::int32_t>(sim.active_coflows);
  s.i2 = static_cast<std::int32_t>(sim.active_jobs);
  s.v0 = static_cast<double>(sim.events);
  s.v1 = static_cast<double>(sim.events - last_events_) / config_.every;
  s.v2 = static_cast<double>(sim.calendar_entries);
  s.v3 = static_cast<double>(sim.flow_touches);
  s.v4 = static_cast<double>(sim.rate_recomputations);
  s.v5 = static_cast<double>(sim.trace_records);
  sink.emit(s);

  if (config_.memory) {
    TraceRecord m;
    m.kind = TraceEventKind::kMemSample;
    m.time = t;
    m.v0 = static_cast<double>(mem.state_bytes);
    m.v1 = static_cast<double>(mem.calendar_bytes);
    m.v2 = static_cast<double>(mem.retry_bytes);
    m.v3 = static_cast<double>(mem.trace_bytes);
    m.v4 = static_cast<double>(mem.active_set_bytes);
    m.v5 = static_cast<double>(mem.total());
    sink.emit(m);
  }

  if (config_.wall) {
    const double wall_ms =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                WallClock::now() - wall_start_)
                                .count()) /
        1e6;
    TraceRecord w;
    w.kind = TraceEventKind::kWallSample;
    w.time = t;
    w.v0 = wall_ms;
    w.v1 = static_cast<double>(sim.events);
    const double wall_delta_s = (wall_ms - last_wall_ms_) / 1e3;
    w.v2 = wall_delta_s > 0
               ? static_cast<double>(sim.events - last_events_) / wall_delta_s
               : 0.0;
    sink.emit(w);
    last_wall_ms_ = wall_ms;
  }

  last_events_ = sim.events;
  ++k_;
}

}  // namespace gurita::obs
