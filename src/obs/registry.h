// Counter / gauge registry.
//
// A named, ordered collection of monotone counters (std::uint64_t, merged
// by summing) and gauges (double, merged by max — the semantics of
// makespan, the registry's canonical gauge). The engine's per-run cost
// counters (SimResults) are the first client: SimResults::export_counters
// projects them into a registry, and merging per-shard registries in shard
// order is guaranteed to agree with SimResults::merge_counters — the
// ordered-merge half of the parallel runner's determinism contract
// (DESIGN.md §9/§10; the equivalence is enforced by tests/obs_test.cpp
// across 1/2/8 workers).
//
// Names are dot-scoped by convention ("engine.events", "trace.queue_change",
// "profile.allocator.ns"); storage is a std::map so every iteration,
// export and merge is deterministic in name order.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace gurita::obs {

class Registry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Sets gauge `name` (overwrites; merge() takes the max across shards).
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  /// Counter value, 0 if absent.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  /// Gauge value, 0 if absent.
  [[nodiscard]] double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }

  /// Folds another registry in: counters sum, gauges take the max. Both
  /// operations are commutative and associative, so any merge order over
  /// the same shard set yields the same registry; pooling in shard order
  /// additionally matches SimResults::merge_counters byte for byte.
  void merge(const Registry& other);

  /// Deterministic JSON object: {"counters": {...}, "gauges": {...}},
  /// keys in name order, doubles at full round-trip precision.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace gurita::obs
