// Counter / gauge registry.
//
// A named, ordered collection of monotone counters (std::uint64_t, merged
// by summing) and gauges (double, merged by max — the semantics of
// makespan, the registry's canonical gauge). The engine's per-run cost
// counters (SimResults) are the first client: SimResults::export_counters
// projects them into a registry, and merging per-shard registries in shard
// order is guaranteed to agree with SimResults::merge_counters — the
// ordered-merge half of the parallel runner's determinism contract
// (DESIGN.md §9/§10; the equivalence is enforced by tests/obs_test.cpp
// across 1/2/8 workers).
//
// Names are dot-scoped by convention ("engine.events", "trace.queue_change",
// "profile.allocator.ns"); storage is a std::map so every iteration,
// export and merge is deterministic in name order.
//
// Histograms (common/stats LogHistogram) are the third member kind:
// log-bucketed distributions (JCT, queue wait, retry backoff, allocator
// component sizes) whose merge — bucket-count summation — is commutative
// and associative like the counters', so pooled exports are byte-identical
// at any worker count. Every JSON export carries p50/p95/p99 per histogram.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/check.h"
#include "common/stats.h"

namespace gurita::obs {

class Registry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Sets gauge `name` (overwrites; merge() takes the max across shards).
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  /// Counter value, 0 if absent.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  /// Gauge value, 0 if absent.
  [[nodiscard]] double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Histogram `name`, created with log base `base` on first use. A later
  /// call with a different base is a bug (checked): histogram spacing is
  /// part of the metric's identity.
  LogHistogram& histogram(const std::string& name, double base = 10.0) {
    auto [it, inserted] = histograms_.try_emplace(name, base);
    GURITA_CHECK_MSG(inserted || it->second.base() == base,
                     "histogram re-declared with a different base: " + name);
    return it->second;
  }
  /// Records `x` into histogram `name` (creating it with the default base).
  void observe(const std::string& name, double x) { histogram(name).add(x); }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

  /// Folds another registry in: counters sum, gauges take the max,
  /// histograms sum bucket counts. All three operations are commutative
  /// and associative, so any merge order over the same shard set yields
  /// the same registry; pooling in shard order additionally matches
  /// SimResults::merge_counters byte for byte.
  void merge(const Registry& other);

  /// Deterministic JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, keys in
  /// name order, doubles at full round-trip precision. Each histogram
  /// carries base/count/zeros, p50/p95/p99 and the sparse bucket table.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace gurita::obs
