// Chrome-trace (chrome://tracing / Perfetto) exporter.
//
// Renders PhaseProfiler spans and IntervalSampler records as a Trace Event
// Format JSON object ({"traceEvents": [...]}) that ui.perfetto.dev and
// chrome://tracing load directly. Each track is one process: phase spans
// become "X" (complete) events on thread 0, sampler records become "C"
// (counter) events. Span timestamps are wall-clock ns since the profiled
// run started; sampler timestamps are *simulation* seconds mapped to
// microseconds — the two kinds of track share a file, not a clock, which
// the track names call out. Wall-clock output: this exporter is telemetry
// outside the determinism contract (DESIGN.md §14).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"

namespace gurita::obs {

/// One process-level track of the exported trace.
struct ChromeTrack {
  /// Process name shown in the UI (e.g. "fig5/gurita").
  std::string name;
  /// Exclusive phase slices (PhaseProfiler::take_spans).
  std::vector<PhaseSpan> spans;
  /// Sampler records; kinds other than kSample/kMemSample/kWallSample are
  /// ignored.
  std::vector<TraceRecord> samples;
};

/// Writes the Trace Event Format JSON for `tracks`.
void write_chrome_trace(std::ostream& out,
                        const std::vector<ChromeTrack>& tracks);

}  // namespace gurita::obs
