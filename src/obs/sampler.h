// Deterministic interval sampler: periodic run-health samples on a uniform
// sim-time grid.
//
// The sampler owns a boundary cursor k and emits one kSample record (plus a
// kMemSample and, opt-in, a kWallSample) for every grid point k*every the
// simulation clock crosses, stamped at the grid time. Boundaries are
// computed by multiplication, never by accumulation, so a run restored from
// a checkpoint lands on bit-identical grid times. The engine polls the
// sampler after every processed event (flowsim/simulator.cpp), which is the
// same set of poll points an uninterrupted run passes through — together
// with the serialized cursor (snapshot/snapshot.cpp) this makes the sample
// series byte-identical across a checkpoint/restore split and at any
// worker count (samples ride the trace buffer through the same replicate-
// order pooling as every other record).
//
// Determinism contract (DESIGN.md §14): every field of kSample/kMemSample
// is a pure function of serialized simulation state — event counters,
// container *sizes* (never capacities), live-entity counts. Wall-clock
// readings are confined to kWallSample, which is opt-in, excluded from the
// default kind mask, and never used in determinism checks.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/units.h"
#include "obs/trace.h"

namespace gurita::obs {

class IntervalSampler {
 public:
  struct Config {
    /// Sim-time sampling interval; must be > 0.
    double every = 0;
    /// Also emit per-subsystem memory samples (kMemSample) at each boundary.
    bool memory = true;
    /// Opt-in wall-clock samples (kWallSample): NOT deterministic, excluded
    /// from fingerprints and determinism legs.
    bool wall = false;
  };

  /// Deterministic run-health fields, gathered by the engine at a poll
  /// point. Everything here must be derivable from checkpointed state.
  struct SimSample {
    std::uint64_t events = 0;
    std::uint64_t flow_touches = 0;
    std::uint64_t rate_recomputations = 0;
    std::uint64_t active_flows = 0;
    std::uint64_t active_coflows = 0;
    std::uint64_t active_jobs = 0;
    std::uint64_t calendar_entries = 0;
    std::uint64_t trace_records = 0;
  };

  /// Logical live bytes per subsystem (element counts x element size, never
  /// reserved capacity — capacity depends on buffer-pool reuse history,
  /// which is outside the determinism contract).
  struct MemSample {
    std::uint64_t state_bytes = 0;       ///< flow/coflow/job/aggregate stores
    std::uint64_t calendar_bytes = 0;    ///< completion calendar entries
    std::uint64_t retry_bytes = 0;       ///< parked flows + retry heap
    std::uint64_t trace_bytes = 0;       ///< trace recorder buffer
    std::uint64_t active_set_bytes = 0;  ///< active set + pos/gen tables
    [[nodiscard]] std::uint64_t total() const {
      return state_bytes + calendar_bytes + retry_bytes + trace_bytes +
             active_set_bytes;
    }
  };

  explicit IntervalSampler(Config config) : config_(config) {
    GURITA_CHECK_MSG(config_.every > 0, "sampler interval must be positive");
  }

  [[nodiscard]] const Config& config() const { return config_; }

  /// Next grid time not yet sampled. The engine polls while
  /// next_due() <= now.
  [[nodiscard]] Time next_due() const {
    return static_cast<Time>(k_) * config_.every;
  }

  /// Emits the records for the next_due() boundary into `sink` and advances
  /// the cursor. `sim` / `mem` describe the state at the poll point (the
  /// first event boundary at or past the grid time).
  void emit(TraceRecorder& sink, const SimSample& sim, const MemSample& mem);

  /// Starts (or restarts) the wall clock for kWallSample deltas; called at
  /// prepare()/restore(). Harmless when wall sampling is off.
  void start_wall() {
    wall_start_ = WallClock::now();
    last_wall_ms_ = 0;
  }

  // --- checkpoint plumbing (snapshot/snapshot.cpp) ---
  /// Serialized cursor: boundary index and the event count at the previous
  /// boundary (for the events/sec delta). Wall state is deliberately not
  /// part of it.
  struct Cursor {
    std::uint64_t k = 1;
    std::uint64_t last_events = 0;
  };
  [[nodiscard]] Cursor cursor() const { return Cursor{k_, last_events_}; }
  void restore_cursor(const Cursor& c) {
    k_ = c.k;
    last_events_ = c.last_events;
  }

 private:
  using WallClock = std::chrono::steady_clock;

  Config config_;
  /// Next boundary index; the grid starts at 1*every (everything is zero
  /// at t=0, so the origin sample carries no information).
  std::uint64_t k_ = 1;
  /// Event count at the previously emitted boundary.
  std::uint64_t last_events_ = 0;
  WallClock::time_point wall_start_{};
  double last_wall_ms_ = 0;
};

}  // namespace gurita::obs
