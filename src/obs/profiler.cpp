#include "obs/profiler.h"

#include <cstdio>

#include "obs/registry.h"

namespace gurita::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSetup: return "setup";
    case Phase::kSchedulerAssign: return "scheduler_assign";
    case Phase::kAllocator: return "allocator";
    case Phase::kCalendarDrain: return "calendar_drain";
    case Phase::kCompletion: return "completion";
    case Phase::kDagRelease: return "dag_release";
    case Phase::kArrival: return "arrival";
    case Phase::kTick: return "tick";
    case Phase::kResults: return "results";
    case Phase::kFault: return "fault";
    case Phase::kAllocFrontier: return "alloc_frontier";
    case Phase::kAllocConverge: return "alloc_converge";
    case Phase::kSampling: return "sampling";
  }
  return "?";
}

void PhaseProfile::merge(const PhaseProfile& other) {
  for (int p = 0; p < kNumPhases; ++p) {
    phases[static_cast<std::size_t>(p)].ns +=
        other.phases[static_cast<std::size_t>(p)].ns;
    phases[static_cast<std::size_t>(p)].count +=
        other.phases[static_cast<std::size_t>(p)].count;
  }
  run_wall_ns += other.run_wall_ns;
  runs += other.runs;
}

std::uint64_t PhaseProfile::tracked_ns() const {
  std::uint64_t total = 0;
  for (const Entry& e : phases) total += e.ns;
  return total;
}

double PhaseProfile::coverage() const {
  return run_wall_ns == 0
             ? 0.0
             : static_cast<double>(tracked_ns()) /
                   static_cast<double>(run_wall_ns);
}

std::string PhaseProfile::to_table() const {
  std::string out =
      "phase              time_ms   % of wall     entries\n";
  char buf[128];
  const double wall_ms = static_cast<double>(run_wall_ns) / 1e6;
  for (int p = 0; p < kNumPhases; ++p) {
    const Entry& e = phases[static_cast<std::size_t>(p)];
    const double ms = static_cast<double>(e.ns) / 1e6;
    const double pct =
        run_wall_ns == 0 ? 0.0
                         : 100.0 * static_cast<double>(e.ns) /
                               static_cast<double>(run_wall_ns);
    std::snprintf(buf, sizeof(buf), "%-16s %9.2f %10.1f%% %11llu\n",
                  phase_name(static_cast<Phase>(p)), ms, pct,
                  static_cast<unsigned long long>(e.count));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "engine wall %.2f ms over %llu run(s); phase coverage %.1f%%\n",
                wall_ms, static_cast<unsigned long long>(runs),
                100.0 * coverage());
  out += buf;
  return out;
}

void PhaseProfile::export_to(Registry& registry) const {
  for (int p = 0; p < kNumPhases; ++p) {
    const Entry& e = phases[static_cast<std::size_t>(p)];
    const std::string base =
        std::string("profile.") + phase_name(static_cast<Phase>(p));
    registry.add(base + ".ns", e.ns);
    registry.add(base + ".count", e.count);
  }
  registry.add("profile.run_wall_ns", run_wall_ns);
  registry.add("profile.runs", runs);
  registry.set_gauge("profile.coverage", coverage());
}

}  // namespace gurita::obs
