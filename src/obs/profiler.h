// Engine phase profiler.
//
// Scoped RAII timers over the simulator's per-event phases — scheduler
// assignment, allocator recompute, calendar drain, completions, DAG
// releases, arrivals, coordination ticks — plus the run's setup and result
// assembly. Attribution is *exclusive*: entering a nested scope (e.g. a DAG
// release fired from inside a completion) pauses the enclosing phase, so
// phase times never double-count and their sum is bounded by the measured
// run wall time. The uncovered remainder is the event loop's glue
// (min-of-next-event selection, counter bumps), which is why a profiled run
// reports phase coverage of ≥ 90% of engine wall time.
//
// Cost contract: a null profiler pointer makes every ScopedPhase a no-op
// (two inlined null checks, no clock reads). An attached profiler costs two
// steady_clock reads per scope. Profiling never touches simulation state,
// so results are bit-identical with and without it.
//
// PhaseProfile is the mergeable POD snapshot: per-run profiles sum across a
// run matrix (SimResults carries one; ComparisonResult::absorb merges), so
// BENCH_* reports carry a phase breakdown pooled over all runs.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace gurita::obs {

class Registry;

/// Engine phases, in report order.
enum class Phase : int {
  kSetup = 0,           ///< run() preamble: reserve, arrival sort
  kSchedulerAssign = 1, ///< Scheduler::assign (priority → tier/weight)
  kAllocator = 2,       ///< allocate_rates + settle/re-key of changed flows
  kCalendarDrain = 3,   ///< stale-entry pops, next-event pick, due pops
  kCompletion = 4,      ///< finish_flow / finish_coflow bookkeeping
  kDagRelease = 5,      ///< release_coflow: flow creation, routing, hooks
  kArrival = 6,         ///< job arrival handling (minus nested releases)
  kTick = 7,            ///< Scheduler::on_tick coordination rounds
  kResults = 8,         ///< end-of-run result assembly
  kFault = 9,           ///< fault application, aborts, retries (fault/)
  kAllocFrontier = 10,  ///< incremental allocator: mirror scan + closure
  kAllocConverge = 11,  ///< water-filling kernel over affected components
  kSampling = 12,       ///< interval sampler polls (obs/sampler.h)
};

inline constexpr int kNumPhases = 13;

[[nodiscard]] const char* phase_name(Phase phase);

/// One exclusive-attribution slice of wall time spent in a phase, captured
/// only when span recording is enabled (obs/chrome_trace.h renders these as
/// Perfetto "complete" events). Times are ns since the profiler's first
/// begin_run(). Wall-clock telemetry: outside the determinism contract,
/// never serialized into snapshots or fingerprinted exports.
struct PhaseSpan {
  std::int32_t phase = -1;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Mergeable snapshot of one or more profiled runs.
struct PhaseProfile {
  struct Entry {
    std::uint64_t ns = 0;     ///< exclusive time in the phase
    std::uint64_t count = 0;  ///< scope entries
  };
  std::array<Entry, kNumPhases> phases{};
  std::uint64_t run_wall_ns = 0;  ///< wall time between begin_run/end_run
  std::uint64_t runs = 0;         ///< completed runs folded in

  /// Sums another profile in (phase times, counts, wall, run count).
  void merge(const PhaseProfile& other);

  /// Total time attributed to any phase.
  [[nodiscard]] std::uint64_t tracked_ns() const;
  /// tracked_ns / run_wall_ns (0 when nothing was measured).
  [[nodiscard]] double coverage() const;

  /// Fixed-width report: one row per phase with ms, % of wall and entry
  /// count, plus the wall/coverage footer BENCH reports embed.
  [[nodiscard]] std::string to_table() const;

  /// Folds phase times into `registry` as counters
  /// ("profile.<phase>.ns" / ".count", "profile.run_wall_ns") and the
  /// coverage as a gauge ("profile.coverage").
  void export_to(Registry& registry) const;
};

/// Accumulates exclusive per-phase time for one engine run at a time.
/// Not thread-safe; each run owns its profiler (the parallel runner gives
/// every shard its own and merges snapshots in slot order).
class PhaseProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Marks the start of a run; phase scopes must nest within
  /// begin_run/end_run.
  void begin_run() {
    run_start_ = Clock::now();
    mark_ = run_start_;
    current_ = -1;
    ++profile_.runs;
    if (!have_epoch_) {
      epoch_ = run_start_;
      have_epoch_ = true;
    }
  }

  /// Marks the end of a run, folding its wall time into the snapshot.
  void end_run() {
    const Clock::time_point now = Clock::now();
    accrue(now);
    current_ = -1;
    profile_.run_wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - run_start_)
            .count());
  }

  /// Switches attribution to `phase`; returns the previous phase index for
  /// the matching leave(). Prefer ScopedPhase.
  int enter(Phase phase) {
    const Clock::time_point now = Clock::now();
    accrue(now);
    const int prev = current_;
    current_ = static_cast<int>(phase);
    ++profile_.phases[static_cast<std::size_t>(current_)].count;
    return prev;
  }

  /// Restores attribution to `prev` (the value enter() returned).
  void leave(int prev) {
    const Clock::time_point now = Clock::now();
    accrue(now);
    current_ = prev;
  }

  [[nodiscard]] const PhaseProfile& snapshot() const { return profile_; }

  /// Turns on per-slice span capture (for Chrome-trace export); at most
  /// `cap` spans are kept, further slices are counted as dropped. Disabled
  /// capture costs nothing beyond the existing accrue() work.
  void enable_spans(std::size_t cap = kDefaultSpanCap) {
    spans_enabled_ = true;
    span_cap_ = cap;
  }
  /// Moves the captured spans out (the profiler keeps recording afterwards).
  [[nodiscard]] std::vector<PhaseSpan> take_spans() {
    std::vector<PhaseSpan> out = std::move(spans_);
    spans_.clear();
    return out;
  }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }

  static constexpr std::size_t kDefaultSpanCap = 1 << 20;

 private:
  /// Attributes the time since the last switch point to the current phase.
  void accrue(Clock::time_point now) {
    if (current_ >= 0) {
      profile_.phases[static_cast<std::size_t>(current_)].ns +=
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark_)
                  .count());
      if (spans_enabled_ && now > mark_) record_span(now);
    }
    mark_ = now;
  }

  void record_span(Clock::time_point now) {
    if (spans_.size() >= span_cap_) {
      ++spans_dropped_;
      return;
    }
    const auto since = [this](Clock::time_point t) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
              .count());
    };
    spans_.push_back(PhaseSpan{current_, since(mark_), since(now)});
  }

  PhaseProfile profile_;
  int current_ = -1;
  Clock::time_point mark_{};
  Clock::time_point run_start_{};
  bool spans_enabled_ = false;
  std::size_t span_cap_ = 0;
  std::vector<PhaseSpan> spans_;
  std::uint64_t spans_dropped_ = 0;
  /// Zero point of span timestamps: the first begin_run().
  Clock::time_point epoch_{};
  bool have_epoch_ = false;
};

/// RAII phase scope. A null profiler makes construction and destruction
/// no-ops, which is the engine's disabled-path cost contract.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) prev_ = profiler_->enter(phase);
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->leave(prev_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  int prev_ = -1;
};

}  // namespace gurita::obs
