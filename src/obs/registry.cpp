#include "obs/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace gurita::obs {

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + buf;
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace gurita::obs
