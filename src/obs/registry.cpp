#include "obs/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace gurita::obs {

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(name, h);
    if (!inserted) it->second.merge(h);
  }
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  const auto append_double = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  };
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"base\": ";
    append_double(h.base());
    std::snprintf(buf, sizeof(buf), ", \"count\": %" PRIu64,
                  static_cast<std::uint64_t>(h.total()));
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"zeros\": %" PRIu64,
                  static_cast<std::uint64_t>(h.zeros()));
    out += buf;
    // Empty histograms report 0 percentiles (the kernel requires samples).
    const bool have = h.total() > 0;
    out += ", \"p50\": ";
    append_double(have ? h.percentile(50) : 0.0);
    out += ", \"p95\": ";
    append_double(have ? h.percentile(95) : 0.0);
    out += ", \"p99\": ";
    append_double(have ? h.percentile(99) : 0.0);
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [i, c] : h.buckets()) {
      if (!first_bucket) out += ", ";
      std::snprintf(buf, sizeof(buf), "[%d, %" PRIu64 "]", i,
                    static_cast<std::uint64_t>(c));
      out += buf;
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace gurita::obs
