#include "bound/bound.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace gurita {

BoundAnalysis::BoundAnalysis(const std::vector<JobSpec>& jobs, int num_hosts,
                             Rate capacity)
    : num_hosts_(num_hosts), capacity_(capacity) {
  GURITA_CHECK_MSG(num_hosts > 0, "bound analysis needs a positive host count");
  GURITA_CHECK_MSG(capacity > 0, "bound analysis needs a positive capacity");
  jobs_.reserve(jobs.size());
  port_demand_.assign(static_cast<std::size_t>(2 * num_hosts), {});

  // Scratch reused across jobs: per-port bytes of the current coflow / job.
  std::vector<Bytes> coflow_port(static_cast<std::size_t>(2 * num_hosts), 0);
  std::vector<Bytes> job_port(static_cast<std::size_t>(2 * num_hosts), 0);
  std::vector<int> touched;

  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    const JobSpec& spec = jobs[ji];
    JobBound jb;
    jb.total_bytes = spec.total_bytes();
    jb.stages = stage_count(spec);
    jb.release = spec.arrival_time;

    std::vector<int> job_touched;
    // Per-coflow max-port time, then a longest path over the DAG.
    std::vector<double> coflow_time(spec.coflows.size(), 0);
    for (std::size_t ci = 0; ci < spec.coflows.size(); ++ci) {
      touched.clear();
      for (const FlowSpec& f : spec.coflows[ci].flows) {
        const int up = uplink_port(f.src_host);
        const int down = downlink_port(f.dst_host);
        if (coflow_port[up] == 0) touched.push_back(up);
        if (coflow_port[down] == 0) touched.push_back(down);
        coflow_port[up] += f.size;
        coflow_port[down] += f.size;
        if (job_port[up] == 0) job_touched.push_back(up);
        if (job_port[down] == 0) job_touched.push_back(down);
        job_port[up] += f.size;
        job_port[down] += f.size;
      }
      Bytes worst = 0;
      for (const int p : touched) {
        worst = std::max(worst, coflow_port[p]);
        coflow_port[p] = 0;
      }
      coflow_time[ci] = worst / capacity_;
      jb.serial_duration += coflow_time[ci];
    }

    // Longest path: finish[i] = time[i] + max over deps of finish[dep].
    // topological_order guarantees dependencies are visited first.
    std::vector<double> finish(spec.coflows.size(), 0);
    for (const int ci : topological_order(spec)) {
      double start = 0;
      for (const int dep : spec.deps[static_cast<std::size_t>(ci)])
        start = std::max(start, finish[static_cast<std::size_t>(dep)]);
      finish[static_cast<std::size_t>(ci)] =
          start + coflow_time[static_cast<std::size_t>(ci)];
      jb.critical_path =
          std::max(jb.critical_path, finish[static_cast<std::size_t>(ci)]);
    }

    std::sort(job_touched.begin(), job_touched.end());
    for (const int p : job_touched) {
      port_demand_[static_cast<std::size_t>(p)].emplace_back(
          ji, job_port[p] / capacity_);
      job_port[p] = 0;
    }
    jobs_.push_back(jb);
  }
}

double srpt_total_flow_time(
    const std::vector<std::pair<double, double>>& jobs) {
  if (jobs.empty()) return 0;
  // (release, processing, arrival index), processed release-order.
  std::vector<std::pair<double, double>> order = jobs;
  std::sort(order.begin(), order.end());

  // Min-heap on (remaining, release, tie index) — fully deterministic.
  struct Item {
    double remaining;
    double release;
    std::size_t index;
    bool operator>(const Item& o) const {
      if (remaining != o.remaining) return remaining > o.remaining;
      if (release != o.release) return release > o.release;
      return index > o.index;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;

  double t = 0;
  double total = 0;
  std::size_t i = 0;
  while (i < order.size() || !heap.empty()) {
    if (heap.empty()) t = std::max(t, order[i].first);
    while (i < order.size() && order[i].first <= t)
      heap.push({order[i].second, order[i].first, i}), ++i;
    Item cur = heap.top();
    heap.pop();
    const double next_release =
        i < order.size() ? order[i].first : std::numeric_limits<double>::max();
    if (t + cur.remaining <= next_release) {
      t += cur.remaining;
      total += t - cur.release;
    } else {
      cur.remaining -= next_release - t;
      t = next_release;
      heap.push(cur);
    }
  }
  return total;
}

namespace {

bool selected(const std::vector<bool>& include, std::size_t i) {
  return include.empty() || include[i];
}

}  // namespace

double BoundAnalysis::port_load_bound(const std::vector<bool>& include) const {
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!selected(include, i)) continue;
    sum += jobs_[i].critical_path;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double BoundAnalysis::ordering_bound(const std::vector<bool>& include) const {
  double cp_sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!selected(include, i)) continue;
    cp_sum += jobs_[i].critical_path;
    ++n;
  }
  if (n == 0) return 0;

  // For each port: the SRPT optimum over the subset's jobs on that port,
  // plus the critical-path term of the subset's jobs NOT on the port. The
  // two job sets are disjoint, so the sums add soundly; per-job terms may
  // not be mixed (SRPT bounds only the sum of flow times, not each job's).
  double best = cp_sum;  // the no-port baseline: bound (a)'s numerator
  std::vector<std::pair<double, double>> on_port;
  for (const auto& demands : port_demand_) {
    if (demands.empty()) continue;
    on_port.clear();
    double off_port_cp = cp_sum;
    for (const auto& [ji, seconds] : demands) {
      if (!selected(include, ji)) continue;
      on_port.emplace_back(jobs_[ji].release, seconds);
      off_port_cp -= jobs_[ji].critical_path;
    }
    if (on_port.empty()) continue;
    best = std::max(best, srpt_total_flow_time(on_port) + off_port_cp);
  }
  return best / static_cast<double>(n);
}

double BoundAnalysis::average_jct_bound(
    const std::vector<bool>& include) const {
  return std::max(port_load_bound(include), ordering_bound(include));
}

double BoundAnalysis::reference_average_jct(
    const std::vector<bool>& include) const {
  std::vector<std::size_t> subset;
  for (std::size_t i = 0; i < jobs_.size(); ++i)
    if (selected(include, i)) subset.push_back(i);
  if (subset.empty()) return 0;

  // Shafiee–Ghaderi-style primal–dual permutation: repeatedly find the most
  // loaded port over the unscheduled jobs, place the job with the largest
  // demand on it LAST, remove it, repeat. Ties break toward the lowest port
  // then the lowest job index, so the permutation is deterministic.
  std::vector<double> port_load(port_demand_.size(), 0);
  std::vector<char> active(jobs_.size(), 0);
  for (const std::size_t i : subset) active[i] = 1;
  for (std::size_t p = 0; p < port_demand_.size(); ++p)
    for (const auto& [ji, seconds] : port_demand_[p])
      if (active[ji]) port_load[p] += seconds;

  std::vector<std::size_t> order(subset.size());
  for (std::size_t left = subset.size(); left > 0; --left) {
    std::size_t worst_port = 0;
    double worst_load = -1;
    for (std::size_t p = 0; p < port_load.size(); ++p) {
      if (port_load[p] > worst_load) {
        worst_load = port_load[p];
        worst_port = p;
      }
    }
    // Largest demand on the bottleneck port goes last; jobs absent from
    // that port cannot be picked unless the port is empty of active jobs
    // (then any remaining job closes the permutation — take the lowest).
    std::size_t pick = jobs_.size();
    double pick_demand = -1;
    for (const auto& [ji, seconds] : port_demand_[worst_port]) {
      if (!active[ji]) continue;
      if (seconds > pick_demand) {
        pick_demand = seconds;
        pick = ji;
      }
    }
    if (pick == jobs_.size()) {
      for (const std::size_t ji : subset)
        if (active[ji]) {
          pick = ji;
          break;
        }
    }
    active[pick] = 0;
    for (std::size_t p = 0; p < port_demand_.size(); ++p)
      for (const auto& [ji, seconds] : port_demand_[p])
        if (ji == pick) port_load[p] -= seconds;
    order[left - 1] = pick;
  }

  // Sequential list schedule on the big-switch relaxation: each job runs
  // alone (its coflows one after another, each finishing exactly at its
  // max-port time), respecting releases.
  double t = 0;
  double total = 0;
  for (const std::size_t ji : order) {
    t = std::max(t, jobs_[ji].release) + jobs_[ji].serial_duration;
    total += t - jobs_[ji].release;
  }
  return total / static_cast<double>(order.size());
}

}  // namespace gurita
