// Gap-to-bound report: how far each scheduler's achieved average JCT sits
// above the sound lower bound (bound.h) on the same workload — overall, per
// Table-1 job-size category (metrics/category.h, identical bins to the
// figure benches), and per narrow/wide job class (PAPER.md Figs. 5–7:
// FB-Tao-like jobs are wide and shallow, TPC-DS-like jobs narrow and deep).
//
// Per scheduler, the report restricts both sides to the jobs that scheduler
// actually completed (failed jobs are excluded from JCT statistics and must
// therefore be excluded from the bound too — subset restriction keeps the
// bound sound). gap = achieved / bound >= 1 up to float rounding; sound()
// is the CI guard's predicate.
#pragma once

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "bound/bound.h"
#include "flowsim/simulator.h"
#include "metrics/category.h"

namespace gurita {

/// One (job subset, scheduler) cell of the report.
struct GapCell {
  std::size_t jobs = 0;
  double achieved = 0;  ///< achieved average JCT (seconds)
  double bound = 0;     ///< lower bound on the average JCT (seconds)

  /// Achieved-to-bound ratio (>= 1 for a sound bound); 0 when undefined.
  [[nodiscard]] double gap() const {
    return bound > 0 ? achieved / bound : 0.0;
  }
};

struct SchedulerGap {
  std::string scheduler;
  GapCell overall;
  std::array<GapCell, kNumCategories> by_category;
  GapCell narrow;  ///< deep jobs (> kWideMaxStages stages), TPC-DS-like
  GapCell wide;    ///< shallow jobs (<= kWideMaxStages stages), FB-Tao-like
};

/// Stage-depth threshold of the narrow/wide split: FB-Tao DAGs are three
/// stages deep (wide class), TPC-DS DAGs deeper (narrow class).
inline constexpr int kWideMaxStages = 3;

struct GapReport {
  std::string scenario;
  int num_hosts = 0;
  Rate capacity = 0;
  /// Average JCT of the Shafiee–Ghaderi reference schedule over all jobs —
  /// the achievable upper reference bracketing the optimum from above.
  double reference_avg_jct = 0;
  /// Run-level bound components over all jobs (before per-scheduler
  /// failed-job masking): the port-load and ordering halves of the bound.
  double port_load_bound = 0;
  double ordering_bound = 0;
  std::vector<SchedulerGap> schedulers;

  /// True iff every non-empty cell satisfies bound <= achieved within the
  /// relative tolerance (float headroom for provably tight instances).
  [[nodiscard]] bool sound(double tolerance = 1e-9) const;

  /// Deterministic JSON object (keys fixed, doubles at %.17g round-trip
  /// precision, only non-empty categories emitted).
  [[nodiscard]] std::string to_json() const;

  /// Per-scheduler fixed-width tables (metrics/report.h style).
  [[nodiscard]] std::string to_table() const;
};

/// Builds the report for one completed comparison: `achieved` pairs each
/// scheduler name with its SimResults over the SAME workload `jobs`
/// (results.jobs[i] must correspond to jobs[i] — the run_one contract).
[[nodiscard]] GapReport make_gap_report(
    std::string scenario, const std::vector<JobSpec>& jobs, int num_hosts,
    Rate capacity,
    const std::vector<std::pair<std::string, const SimResults*>>& achieved);

}  // namespace gurita
