// Offline lower bounds on average JCT for completed runs (ROADMAP item 5).
//
// The single-machine DP (core/optimal.h) certifies "near optimal" only in
// the FFS-MJ collapse; the fabric runs of bench_fig5..7 had no yardstick.
// This module computes two *sound* lower bounds on the average JCT any
// scheduler could have achieved on a given workload, from the static job
// specs alone (no simulation):
//
//  (a) Port-load bound. A coflow cannot finish faster than its most loaded
//      host port — max over ingress/egress NICs of (bytes through the port)
//      divided by the port capacity (the "effective bottleneck" of
//      Varys/Aalo analyses, valid on the big-switch relaxation of any
//      fabric: real topologies only add contention). Chained through the
//      job DAG as a critical path — a coflow starts only after its
//      dependencies complete — this gives a per-job bound on JCT that is
//      release-time aware by construction (JCT is measured from arrival).
//
//  (b) Ordering bound. Cross-job contention: all bytes a set of jobs push
//      through one port must share that port's capacity. Relaxing
//      everything except one port leaves the single-machine preemptive
//      release-date problem 1|r_j, pmtn|sum C_j, solved exactly by SRPT
//      (equivalently: the base case of the Queyranne/Shafiee–Ghaderi
//      permutation LP, whose single-port relaxation is exact). The sum of
//      job flow times at the SRPT optimum of port p lower-bounds the sum of
//      the real JCTs of the jobs using p; jobs not using p contribute their
//      per-job bound (a). The bound takes the max over ports.
//
// Both bounds survive restriction to any job subset (serving fewer jobs is
// a relaxation), which yields per-category and per-class bounds, and both
// assume *nominal* port capacity — faults, TCP ramp-up and degrading
// disruptions only slow a run down, so soundness is preserved (a
// capacity-raising disruption would break it; none exists in this repo).
//
// The module also builds an *achievable* reference schedule in the spirit
// of Shafiee–Ghaderi's primal–dual permutation (arXiv 2012.11702): jobs are
// ordered by repeatedly finding the most loaded port and placing the job
// with the largest demand on it last, then list-scheduled sequentially on
// the big-switch relaxation (each job alone runs its coflows in topological
// order, each meeting its bound-(a) port time exactly). Its average JCT is
// an upper reference: optimum lies between the bound and the reference.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "coflow/job.h"
#include "common/units.h"

namespace gurita {

/// Per-job static quantities the bounds are assembled from.
struct JobBound {
  Bytes total_bytes = 0;
  int stages = 1;            ///< stage_count(spec)
  Time release = 0;          ///< arrival time
  /// Bound (a): DAG critical path over per-coflow max-port times (seconds).
  double critical_path = 0;
  /// Solo duration of the reference schedule: sum of per-coflow max-port
  /// times over the whole job (coflows served one at a time).
  double serial_duration = 0;
};

/// Computes the bounds for one workload on a fabric of `num_hosts` hosts
/// whose host ports (NIC ingress/egress) run at `capacity` bytes/s —
/// the big-switch relaxation of whatever topology actually ran the jobs.
/// All queries are pure functions of the inputs (deterministic).
class BoundAnalysis {
 public:
  BoundAnalysis(const std::vector<JobSpec>& jobs, int num_hosts,
                Rate capacity);

  [[nodiscard]] const std::vector<JobBound>& jobs() const { return jobs_; }
  [[nodiscard]] int num_hosts() const { return num_hosts_; }
  [[nodiscard]] Rate capacity() const { return capacity_; }

  /// Sound lower bound on the average JCT of the selected subset: the max
  /// of port_load_bound and ordering_bound. `include` is indexed like the
  /// input jobs; empty selects every job. Returns 0 for an empty subset.
  [[nodiscard]] double average_jct_bound(
      const std::vector<bool>& include = {}) const;

  /// Bound (a) alone: mean per-job critical path over the subset.
  [[nodiscard]] double port_load_bound(
      const std::vector<bool>& include = {}) const;

  /// Bound (b) alone: max over ports of the SRPT relaxation (jobs off the
  /// port contribute their critical path). Never below port_load_bound's
  /// numerator minus per-job slack — the max with (a) is taken by
  /// average_jct_bound.
  [[nodiscard]] double ordering_bound(
      const std::vector<bool>& include = {}) const;

  /// Average JCT of the Shafiee–Ghaderi-style reference schedule over the
  /// subset (achievable on the big-switch relaxation; informational upper
  /// reference, NOT a bound on real fabric runs).
  [[nodiscard]] double reference_average_jct(
      const std::vector<bool>& include = {}) const;

 private:
  /// Port ids: 0..num_hosts-1 = host uplinks (sender NICs),
  /// num_hosts..2*num_hosts-1 = host downlinks (receiver NICs).
  [[nodiscard]] static int uplink_port(int host) { return host; }
  [[nodiscard]] int downlink_port(int host) const { return num_hosts_ + host; }

  int num_hosts_;
  Rate capacity_;
  std::vector<JobBound> jobs_;
  /// port -> sorted (job index, service seconds at nominal capacity).
  std::vector<std::vector<std::pair<std::size_t, double>>> port_demand_;
};

/// Exact minimum of sum of flow times (completion - release) for preemptive
/// single-machine scheduling with release dates — the SRPT schedule.
/// `jobs` holds (release, processing) pairs; both in seconds. Exposed for
/// the hand-computed tightness tests.
[[nodiscard]] double srpt_total_flow_time(
    const std::vector<std::pair<double, double>>& jobs);

}  // namespace gurita
