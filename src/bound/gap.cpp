#include "bound/gap.h"

#include <cstdio>

#include "common/check.h"
#include "metrics/report.h"

namespace gurita {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string cell_json(const GapCell& c) {
  return "{\"jobs\": " + std::to_string(c.jobs) + ", \"achieved\": " +
         fmt(c.achieved) + ", \"bound\": " + fmt(c.bound) + ", \"gap\": " +
         fmt(c.gap()) + "}";
}

bool cell_sound(const GapCell& c, double tolerance) {
  return c.jobs == 0 || c.bound <= c.achieved * (1 + tolerance);
}

}  // namespace

bool GapReport::sound(double tolerance) const {
  for (const SchedulerGap& s : schedulers) {
    if (!cell_sound(s.overall, tolerance)) return false;
    for (const GapCell& c : s.by_category)
      if (!cell_sound(c, tolerance)) return false;
    if (!cell_sound(s.narrow, tolerance)) return false;
    if (!cell_sound(s.wide, tolerance)) return false;
  }
  return true;
}

std::string GapReport::to_json() const {
  std::string out = "{\n";
  out += "  \"scenario\": \"" + scenario + "\",\n";
  out += "  \"num_hosts\": " + std::to_string(num_hosts) + ",\n";
  out += "  \"capacity_bytes_per_s\": " + fmt(capacity) + ",\n";
  out += "  \"port_load_bound\": " + fmt(port_load_bound) + ",\n";
  out += "  \"ordering_bound\": " + fmt(ordering_bound) + ",\n";
  out += "  \"reference_avg_jct\": " + fmt(reference_avg_jct) + ",\n";
  out += "  \"schedulers\": [";
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    const SchedulerGap& s = schedulers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"scheduler\": \"" + s.scheduler + "\",\n";
    out += "     \"overall\": " + cell_json(s.overall) + ",\n";
    out += "     \"narrow\": " + cell_json(s.narrow) + ",\n";
    out += "     \"wide\": " + cell_json(s.wide) + ",\n";
    out += "     \"categories\": {";
    bool first = true;
    for (int cat = 0; cat < kNumCategories; ++cat) {
      const GapCell& c = s.by_category[static_cast<std::size_t>(cat)];
      if (c.jobs == 0) continue;
      out += first ? "" : ", ";
      out += "\"" + category_name(cat) + "\": " + cell_json(c);
      first = false;
    }
    out += "}}";
  }
  out += schedulers.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string GapReport::to_table() const {
  std::string out;
  for (const SchedulerGap& s : schedulers) {
    out += s.scheduler + "\n";
    out += category_panel(
        [&](int cat) {
          return cat < 0 ? s.overall.jobs
                         : s.by_category[static_cast<std::size_t>(cat)].jobs;
        },
        [&](int cat) {
          return cat < 0
                     ? s.overall.achieved
                     : s.by_category[static_cast<std::size_t>(cat)].achieved;
        },
        "achieved JCT(s)", {"bound JCT(s)", "gap"},
        [&](int cat) -> std::vector<std::string> {
          const GapCell& c =
              cat < 0 ? s.overall : s.by_category[static_cast<std::size_t>(cat)];
          return {TextTable::num(c.bound), TextTable::num(c.gap())};
        });
    out += "\n";
  }
  return out;
}

GapReport make_gap_report(
    std::string scenario, const std::vector<JobSpec>& jobs, int num_hosts,
    Rate capacity,
    const std::vector<std::pair<std::string, const SimResults*>>& achieved) {
  GapReport report;
  report.scenario = std::move(scenario);
  report.num_hosts = num_hosts;
  report.capacity = capacity;

  const BoundAnalysis analysis(jobs, num_hosts, capacity);
  report.reference_avg_jct = analysis.reference_average_jct();
  report.port_load_bound = analysis.port_load_bound();
  report.ordering_bound = analysis.ordering_bound();

  for (const auto& [name, results] : achieved) {
    GURITA_CHECK_MSG(results != nullptr && results->jobs.size() == jobs.size(),
                     "gap report needs results over the same workload");
    SchedulerGap sg;
    sg.scheduler = name;

    // Per-scheduler completion mask: failed jobs are excluded from JCT
    // statistics, so both sides of every cell restrict to the same subset.
    const auto fill = [&](GapCell& cell,
                          const std::function<bool(std::size_t)>& member) {
      std::vector<bool> include(jobs.size(), false);
      double sum = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SimResults::JobResult& j = results->jobs[i];
        if (j.failed || !member(i)) continue;
        include[i] = true;
        sum += j.jct();
        ++cell.jobs;
      }
      if (cell.jobs == 0) return;
      cell.achieved = sum / static_cast<double>(cell.jobs);
      cell.bound = analysis.average_jct_bound(include);
    };

    fill(sg.overall, [](std::size_t) { return true; });
    for (int cat = 0; cat < kNumCategories; ++cat)
      fill(sg.by_category[static_cast<std::size_t>(cat)], [&](std::size_t i) {
        return category_of(analysis.jobs()[i].total_bytes) == cat;
      });
    fill(sg.narrow, [&](std::size_t i) {
      return analysis.jobs()[i].stages > kWideMaxStages;
    });
    fill(sg.wide, [&](std::size_t i) {
      return analysis.jobs()[i].stages <= kWideMaxStages;
    });
    report.schedulers.push_back(std::move(sg));
  }
  return report;
}

}  // namespace gurita
