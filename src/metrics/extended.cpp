#include "metrics/extended.h"

#include "coflow/critical_path.h"
#include "common/check.h"

namespace gurita {

void CctCollector::add(const SimResults& results) {
  for (const SimResults::CoflowResult& c : results.coflows) {
    all_.add(c.cct());
    GURITA_CHECK_MSG(c.stage >= 1, "coflow stages are 1-based");
    if (static_cast<std::size_t>(c.stage) > by_stage_.size())
      by_stage_.resize(static_cast<std::size_t>(c.stage));
    by_stage_[static_cast<std::size_t>(c.stage) - 1].add(c.cct());
  }
}

double CctCollector::p95_cct() const { return all_.percentile_or(95, 0.0); }

double CctCollector::average_cct_at_stage(int stage) const {
  GURITA_CHECK_MSG(stage >= 1, "coflow stages are 1-based");
  if (static_cast<std::size_t>(stage) > by_stage_.size()) return 0.0;
  return by_stage_[static_cast<std::size_t>(stage) - 1].mean();
}

int CctCollector::max_stage_seen() const {
  return static_cast<int>(by_stage_.size());
}

std::vector<double> job_slowdowns(const std::vector<JobSpec>& jobs,
                                  const SimResults& results, Rate line_rate) {
  GURITA_CHECK_MSG(jobs.size() == results.jobs.size(),
                   "spec and result job populations differ");
  std::vector<double> slowdowns;
  slowdowns.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double bound = jct_lower_bound(jobs[i], line_rate);
    GURITA_CHECK_MSG(bound > 0, "job with zero lower bound");
    slowdowns.push_back(results.jobs[i].jct() / bound);
  }
  return slowdowns;
}

double jain_fairness(const std::vector<double>& values) {
  GURITA_CHECK_MSG(!values.empty(), "fairness of empty vector");
  double sum = 0;
  double sum_sq = 0;
  for (double v : values) {
    GURITA_CHECK_MSG(v >= 0, "fairness needs non-negative values");
    sum += v;
    sum_sq += v * v;
  }
  GURITA_CHECK_MSG(sum > 0, "fairness needs a positive entry");
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace gurita
