#include "metrics/collector.h"

#include "common/check.h"

namespace gurita {

void JctCollector::add(const SimResults& results) {
  for (const SimResults::JobResult& j : results.jobs) {
    all_.add(j.jct());
    by_category_[static_cast<std::size_t>(category_of(j.total_bytes))].add(
        j.jct());
  }
}

void JctCollector::merge(const JctCollector& other) {
  all_.merge(other.all_);
  for (std::size_t c = 0; c < by_category_.size(); ++c)
    by_category_[c].merge(other.by_category_[c]);
}

double JctCollector::average_jct(int category) const {
  GURITA_CHECK_MSG(category >= 0 && category < kNumCategories,
                   "category out of range");
  return by_category_[static_cast<std::size_t>(category)].mean();
}

std::size_t JctCollector::jobs(int category) const {
  GURITA_CHECK_MSG(category >= 0 && category < kNumCategories,
                   "category out of range");
  return by_category_[static_cast<std::size_t>(category)].count();
}

double JctCollector::p95_jct() const { return all_.percentile_or(95, 0.0); }

double mean_per_job_speedup(const SimResults& reference,
                            const SimResults& other, int category) {
  GURITA_CHECK_MSG(reference.jobs.size() == other.jobs.size(),
                   "speedup requires runs over the same workload");
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < reference.jobs.size(); ++i) {
    const auto& ref = reference.jobs[i];
    const auto& oth = other.jobs[i];
    GURITA_CHECK_MSG(ref.id == oth.id, "job populations differ");
    if (category >= 0 && category_of(ref.total_bytes) != category) continue;
    if (ref.jct() <= 0) continue;
    sum += oth.jct() / ref.jct();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double improvement_factor(const JctCollector& reference,
                          const JctCollector& other, int category) {
  double ref_jct = 0;
  double other_jct = 0;
  if (category < 0) {
    if (reference.total_jobs() == 0 || other.total_jobs() == 0) return 0.0;
    ref_jct = reference.average_jct();
    other_jct = other.average_jct();
  } else {
    if (reference.jobs(category) == 0 || other.jobs(category) == 0) return 0.0;
    ref_jct = reference.average_jct(category);
    other_jct = other.average_jct(category);
  }
  if (ref_jct <= 0) return 0.0;
  return other_jct / ref_jct;
}

}  // namespace gurita
