// Aggregation of simulation results into the paper's metrics: average JCT
// (overall and per size category) and the improvement factor
//
//   improvement = avg JCT of scheme' / avg JCT of Gurita
//
// "if the improvement is greater (smaller) than one, Gurita is faster
// (slower)" (§V).
#pragma once

#include <array>
#include <string>

#include "common/stats.h"
#include "flowsim/simulator.h"
#include "metrics/category.h"

namespace gurita {

class JctCollector {
 public:
  /// Ingests every job of a run.
  void add(const SimResults& results);

  /// Folds another collector's samples into this one, preserving the
  /// other's insertion order. Merging per-shard collectors in shard order
  /// therefore reproduces the sample sequence of a serial run exactly —
  /// the ordered-merge half of the parallel runner's determinism contract
  /// (exp/runner.h).
  void merge(const JctCollector& other);

  [[nodiscard]] double average_jct() const { return all_.mean(); }
  [[nodiscard]] double average_jct(int category) const;
  [[nodiscard]] std::size_t jobs(int category) const;
  [[nodiscard]] std::size_t total_jobs() const { return all_.count(); }
  [[nodiscard]] double p95_jct() const;

 private:
  Samples all_;
  std::array<Samples, kNumCategories> by_category_;
};

/// Improvement of `reference` (Gurita) over `other`, per the paper's
/// definition: other's average JCT divided by reference's. Returns 0 when
/// either side has no jobs in the category (category = -1 → overall).
[[nodiscard]] double improvement_factor(const JctCollector& reference,
                                        const JctCollector& other,
                                        int category = -1);

/// Mean per-job speedup: average over the shared job population of
/// JCT_other / JCT_reference. Both runs must replay the same workload
/// (jobs aligned by id). Unlike the ratio of averages — which the few
/// giant jobs dominate — this weights every job equally, so it surfaces
/// the improvement experienced by the typical job. `category` = -1 for
/// all jobs.
[[nodiscard]] double mean_per_job_speedup(const SimResults& reference,
                                          const SimResults& other,
                                          int category = -1);

}  // namespace gurita
