// Deadline / tardiness metrics — Johnson's fourth rule ("avoid tardiness:
// tardiness is the time that elapses between when a job is supposed to
// complete and when it actually completes", §IV.A) made measurable.
#pragma once

#include <vector>

#include "coflow/job.h"
#include "common/rng.h"
#include "flowsim/simulator.h"

namespace gurita {

struct TardinessReport {
  std::size_t jobs_with_deadline = 0;
  std::size_t misses = 0;
  double mean_tardiness = 0;  ///< over deadline-carrying jobs (0 if met)
  double max_tardiness = 0;

  [[nodiscard]] double miss_rate() const {
    return jobs_with_deadline == 0
               ? 0.0
               : static_cast<double>(misses) /
                     static_cast<double>(jobs_with_deadline);
  }
};

/// Evaluates deadline outcomes. `jobs` are the submitted specs in job-id
/// order (matching `results.jobs`); jobs without deadlines are ignored.
[[nodiscard]] TardinessReport tardiness_report(
    const std::vector<JobSpec>& jobs, const SimResults& results);

/// Assigns every job a deadline of
///   arrival + slack_factor × critical-path bound at `line_rate`
/// with slack_factor drawn uniformly from [tight, loose] (both > 1 —
/// a deadline below the physical bound is unmeetable by construction).
void assign_deadlines(std::vector<JobSpec>& jobs, Rng& rng, double tight,
                      double loose, Rate line_rate);

}  // namespace gurita
