// Extended evaluation metrics beyond average JCT:
//
//  * CCT statistics — the paper's "primary metrics for comparison is the
//    average CCTs" alongside JCT; collected per stage depth.
//  * Slowdown — JCT divided by the job's critical-path lower bound at line
//    rate; 1.0 means the scheduler achieved the physical optimum for that
//    job. Distribution percentiles expose tail behaviour that averages
//    hide.
//  * Jain's fairness index over per-job slowdowns — how evenly a scheduler
//    spreads its pain (1 = perfectly even).
#pragma once

#include <vector>

#include "common/stats.h"
#include "coflow/job.h"
#include "flowsim/simulator.h"

namespace gurita {

/// CCT statistics for one run, overall and by stage.
class CctCollector {
 public:
  void add(const SimResults& results);

  [[nodiscard]] double average_cct() const { return all_.mean(); }
  [[nodiscard]] double p95_cct() const;
  [[nodiscard]] std::size_t coflows() const { return all_.count(); }
  /// Average CCT of coflows at a given 1-based stage (0 if none seen).
  [[nodiscard]] double average_cct_at_stage(int stage) const;
  [[nodiscard]] int max_stage_seen() const;

 private:
  Samples all_;
  std::vector<Samples> by_stage_;  // index = stage - 1
};

/// Per-job slowdowns: JCT / critical-path bound at `line_rate`.
/// `jobs` must be the submitted specs in job-id order (as produced by the
/// workload generator and preserved by the harness).
[[nodiscard]] std::vector<double> job_slowdowns(
    const std::vector<JobSpec>& jobs, const SimResults& results,
    Rate line_rate);

/// Jain's fairness index of a non-negative vector:
/// (Σx)^2 / (n·Σx²) ∈ (0, 1]. Requires at least one positive entry.
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

}  // namespace gurita
