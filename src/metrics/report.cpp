#include "metrics/report.h"

#include <iomanip>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "metrics/category.h"
#include "metrics/collector.h"

namespace gurita {

TextTable::TextTable(std::vector<std::string> header) {
  GURITA_CHECK_MSG(!header.empty(), "table needs at least one column");
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  GURITA_CHECK_MSG(row.size() == rows_.front().size(),
                   "row width differs from header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(rows_.front().size(), 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2)
         << rows_[r][c];
    }
    os << "\n";
    if (r == 0) {
      for (std::size_t c = 0; c < width.size(); ++c)
        os << std::string(width[c], '-') << "  ";
      os << "\n";
    }
  }
  return os.str();
}

std::string category_panel(
    const std::function<std::size_t(int)>& jobs_in_category,
    const std::function<double(int)>& average_jct,
    const std::string& jct_header,
    const std::vector<std::string>& extra_headers,
    const std::function<std::vector<std::string>(int)>& extra_columns,
    bool overall) {
  std::vector<std::string> header = {"category", "jobs", jct_header};
  header.insert(header.end(), extra_headers.begin(), extra_headers.end());
  TextTable table(std::move(header));

  const auto emit = [&](int cat, const std::string& label) {
    std::vector<std::string> row = {label,
                                    std::to_string(jobs_in_category(cat)),
                                    TextTable::num(average_jct(cat))};
    for (std::string& col : extra_columns(cat)) row.push_back(std::move(col));
    table.add_row(std::move(row));
  };
  for (int cat = 0; cat < kNumCategories; ++cat) {
    if (jobs_in_category(cat) == 0) continue;
    emit(cat, category_name(cat));
  }
  if (overall) emit(-1, "all");
  return table.to_string();
}

std::string category_panel(
    const JctCollector& reference, const std::string& jct_header,
    const std::vector<std::string>& extra_headers,
    const std::function<std::vector<std::string>(int)>& extra_columns,
    bool overall) {
  return category_panel(
      [&](int cat) {
        return cat < 0 ? reference.total_jobs() : reference.jobs(cat);
      },
      [&](int cat) {
        return cat < 0 ? reference.average_jct() : reference.average_jct(cat);
      },
      jct_header, extra_headers, extra_columns, overall);
}

}  // namespace gurita
