#include "metrics/report.h"

#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace gurita {

TextTable::TextTable(std::vector<std::string> header) {
  GURITA_CHECK_MSG(!header.empty(), "table needs at least one column");
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  GURITA_CHECK_MSG(row.size() == rows_.front().size(),
                   "row width differs from header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(rows_.front().size(), 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2)
         << rows_[r][c];
    }
    os << "\n";
    if (r == 0) {
      for (std::size_t c = 0; c < width.size(); ++c)
        os << std::string(width[c], '-') << "  ";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace gurita
