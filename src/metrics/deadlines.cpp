#include "metrics/deadlines.h"

#include <algorithm>

#include "coflow/critical_path.h"
#include "common/check.h"

namespace gurita {

TardinessReport tardiness_report(const std::vector<JobSpec>& jobs,
                                 const SimResults& results) {
  GURITA_CHECK_MSG(jobs.size() == results.jobs.size(),
                   "spec and result job populations differ");
  TardinessReport report;
  double total_tardiness = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].has_deadline()) continue;
    ++report.jobs_with_deadline;
    const double tardiness =
        std::max(0.0, results.jobs[i].finish - jobs[i].deadline);
    if (tardiness > 0) ++report.misses;
    total_tardiness += tardiness;
    report.max_tardiness = std::max(report.max_tardiness, tardiness);
  }
  if (report.jobs_with_deadline > 0)
    report.mean_tardiness =
        total_tardiness / static_cast<double>(report.jobs_with_deadline);
  return report;
}

void assign_deadlines(std::vector<JobSpec>& jobs, Rng& rng, double tight,
                      double loose, Rate line_rate) {
  GURITA_CHECK_MSG(tight > 1.0 && loose >= tight,
                   "slack factors must satisfy 1 < tight <= loose");
  for (JobSpec& job : jobs) {
    const double bound = jct_lower_bound(job, line_rate);
    job.deadline = job.arrival_time + rng.uniform(tight, loose) * bound;
  }
}

}  // namespace gurita
