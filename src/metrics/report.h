// Fixed-width text tables for bench output — the rows/series the paper's
// figures plot, printed in a form diffable across runs.
#pragma once

#include <string>
#include <vector>

namespace gurita {

/// Simple column-aligned table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Formats a double with 3 significant decimals.
  [[nodiscard]] static std::string num(double v);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gurita
