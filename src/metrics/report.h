// Fixed-width text tables for bench output — the rows/series the paper's
// figures plot, printed in a form diffable across runs.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace gurita {

class JctCollector;

/// Simple column-aligned table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Formats a double with 3 significant decimals.
  [[nodiscard]] static std::string num(double v);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// The per-category panel every figure bench prints (and the bound
/// subsystem's gap tables reuse): one row per non-empty Table-1 category in
/// order, plus an "all" row when `overall` is set. Each row starts with the
/// category name, the job count and the average JCT, then the caller's
/// extra columns for that category (-1 = the overall row). Centralizing the
/// iteration here guarantees every consumer walks the exact same bins
/// (metrics/category.h).
[[nodiscard]] std::string category_panel(
    const std::function<std::size_t(int)>& jobs_in_category,
    const std::function<double(int)>& average_jct,
    const std::string& jct_header,
    const std::vector<std::string>& extra_headers,
    const std::function<std::vector<std::string>(int)>& extra_columns,
    bool overall = true);

/// Convenience overload over a JctCollector reference run.
[[nodiscard]] std::string category_panel(
    const JctCollector& reference, const std::string& jct_header,
    const std::vector<std::string>& extra_headers,
    const std::function<std::vector<std::string>(int)>& extra_columns,
    bool overall = true);

}  // namespace gurita
