// Table 1 of the paper: the seven categories of multi-stage job size used
// throughout the evaluation (Figs. 6–8).
//
//   I: 6MB–80MB   II: 81MB–800MB   III: 801MB–8GB   IV: 8GB–10GB
//   V: 10GB–100GB VI: 100GB–1TB    VII: > 1TB
#pragma once

#include <array>
#include <string>

#include "common/units.h"

namespace gurita {

inline constexpr int kNumCategories = 7;

/// Inclusive lower bound of each category in bytes.
[[nodiscard]] const std::array<Bytes, kNumCategories>& category_lower_bounds();

/// Category index (0-based: 0 = "I" ... 6 = "VII") for a job's total bytes.
/// Jobs below 6 MB fold into category I, matching the trace's minimum.
[[nodiscard]] int category_of(Bytes total_bytes);

/// Roman-numeral label, "I" .. "VII".
[[nodiscard]] std::string category_name(int category);

}  // namespace gurita
