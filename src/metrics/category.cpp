#include "metrics/category.h"

#include "common/check.h"

namespace gurita {

const std::array<Bytes, kNumCategories>& category_lower_bounds() {
  static const std::array<Bytes, kNumCategories> bounds = {
      6 * kMB,    // I
      81 * kMB,   // II
      801 * kMB,  // III
      8 * kGB,    // IV
      10 * kGB,   // V
      100 * kGB,  // VI
      1 * kTB,    // VII
  };
  return bounds;
}

int category_of(Bytes total_bytes) {
  GURITA_CHECK_MSG(total_bytes >= 0, "negative job size");
  const auto& bounds = category_lower_bounds();
  int cat = 0;
  for (int i = 1; i < kNumCategories; ++i) {
    if (total_bytes >= bounds[static_cast<std::size_t>(i)]) cat = i;
  }
  return cat;
}

std::string category_name(int category) {
  static const char* names[kNumCategories] = {"I",  "II", "III", "IV",
                                              "V",  "VI", "VII"};
  GURITA_CHECK_MSG(category >= 0 && category < kNumCategories,
                   "category out of range");
  return names[category];
}

}  // namespace gurita
