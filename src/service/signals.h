// Async-signal-safe shutdown latch (DESIGN.md §15).
//
// The rule this module encodes — and the only signal-handling pattern
// allowed in this repo — is: a signal handler may do exactly one thing,
// store the signal number into a lock-free std::atomic<int>. No logging, no
// allocation, no iostream, no checkpointing: none of those are
// async-signal-safe, and a handler that calls them can deadlock inside
// malloc or corrupt a stream if the signal lands mid-operation. The daemon
// polls the latch at event boundaries (between run_to() slices), where the
// full language is available, and performs the graceful drain there.
#pragma once

namespace gurita::service {

/// Installs SIGTERM and SIGINT handlers that record the signal number in
/// the process-wide latch. Idempotent; call once near the top of main().
void install_signal_handlers();

/// The last signal delivered since clear_pending_signal(), or 0.
[[nodiscard]] int pending_signal();

/// Resets the latch (e.g. before a run that wants fresh delivery).
void clear_pending_signal();

/// Test hook: simulates delivery of `sig` without involving the kernel, so
/// drain paths are testable deterministically.
void raise_pending_signal(int sig);

}  // namespace gurita::service
