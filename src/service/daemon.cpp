#include "service/daemon.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stats.h"
#include "exp/registry.h"
#include "fault/fault.h"
#include "metrics/collector.h"
#include "service/signals.h"
#include "snapshot/snapshot.h"

namespace gurita::service {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

[[nodiscard]] std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv_double(std::uint64_t h, double v) {
  return fnv_step(h, std::bit_cast<std::uint64_t>(v));
}

/// Forwarding wrapper around the configured policy. It exists for two
/// reasons the Scheduler interface cannot cover directly:
///
///  * on_compact delivers the remap to the *scheduler*; the daemon needs it
///    too (its external-id ledger is keyed by engine job ids). The wrapper
///    keeps a copy of the last remap for the daemon to read.
///  * degrade-to-fifo: while degraded, assign() bypasses the wrapped policy
///    and serves flows FIFO by admission order. Engine job ids are assigned
///    in admission order and compaction renumbers them monotonically, so
///    the job id value IS the arrival serial — one tier per job, weight 1.
///
/// Everything else forwards verbatim, including set_trace_recorder (virtual
/// exactly so this wrapper can hand the sink to the wrapped policy) and
/// save/load_state, so a daemon checkpoint embeds the same policy bytes a
/// batch checkpoint would.
class ServiceScheduler final : public Scheduler {
 public:
  explicit ServiceScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  void attach(const SimState& state) override {
    Scheduler::attach(state);
    inner_->attach(state);
  }

  void on_job_arrival(const SimJob& job, Time now) override {
    inner_->on_job_arrival(job, now);
  }
  void on_coflow_release(const SimCoflow& coflow, Time now) override {
    inner_->on_coflow_release(coflow, now);
  }
  void on_flow_finish(const SimFlow& flow, Time now) override {
    inner_->on_flow_finish(flow, now);
  }
  void on_coflow_finish(const SimCoflow& coflow, Time now) override {
    inner_->on_coflow_finish(coflow, now);
  }
  void on_job_finish(const SimJob& job, Time now) override {
    inner_->on_job_finish(job, now);
  }
  void on_fault(const FaultEvent& event, Time now) override {
    inner_->on_fault(event, now);
  }
  void on_recover(const FaultEvent& event, Time now) override {
    inner_->on_recover(event, now);
  }
  void on_job_fail(const SimJob& job, Time now) override {
    inner_->on_job_fail(job, now);
  }

  void on_compact(const CompactionRemap& remap) override {
    last_remap_ = remap;
    inner_->on_compact(remap);
  }

  [[nodiscard]] Time tick_interval() const override {
    return inner_->tick_interval();
  }
  bool on_tick(Time now) override { return inner_->on_tick(now); }

  void assign(Time now, const std::vector<SimFlow*>& active) override {
    if (!degraded_) {
      inner_->assign(now, active);
      return;
    }
    for (SimFlow* f : active) {
      f->tier = static_cast<Tier>(f->job.value());
      f->weight = 1.0;
    }
  }

  void save_state(snapshot::Writer& w) const override {
    inner_->save_state(w);
  }
  void load_state(snapshot::Reader& r) override { inner_->load_state(r); }

  void set_trace_recorder(obs::TraceRecorder* recorder) override {
    Scheduler::set_trace_recorder(recorder);
    inner_->set_trace_recorder(recorder);
  }

  /// Takes effect at the next rate recomputation; the daemon only flips it
  /// at event boundaries, so the transition point is deterministic.
  void set_degraded(bool on) { degraded_ = on; }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] const CompactionRemap& last_remap() const {
    return last_remap_;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  bool degraded_ = false;
  CompactionRemap last_remap_;
};

/// Stall detector for the step loop. The main loop beats at every event
/// boundary; a watcher thread declares a *soft* stall after `stall` wall
/// seconds without a beat (the loop, if it ever returns, checkpoints and
/// exits via HaltedError — the clean "resume me" path) and a *hard* stall
/// at twice that (marker file + abort; the last auto-checkpoint is the
/// recovery point). The watcher is an ordinary thread, not a signal
/// handler, so writing the marker file from it is legal.
class Watchdog {
 public:
  Watchdog(double stall_seconds, std::string marker)
      : stall_(stall_seconds), marker_(std::move(marker)) {
    thread_ = std::thread([this] { watch(); });
  }

  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void beat() { beats_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] bool soft_stalled() const {
    return soft_.load(std::memory_order_acquire);
  }

 private:
  void watch() {
    using Clock = std::chrono::steady_clock;
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t last = beats_.load(std::memory_order_relaxed);
    Clock::time_point last_progress = Clock::now();
    while (true) {
      cv_.wait_for(lock, std::chrono::duration<double>(stall_ / 4),
                   [this] { return stop_; });
      if (stop_) return;
      const std::uint64_t beat = beats_.load(std::memory_order_relaxed);
      if (beat != last) {
        last = beat;
        last_progress = Clock::now();
        continue;
      }
      const double idle =
          std::chrono::duration<double>(Clock::now() - last_progress).count();
      if (idle >= stall_) soft_.store(true, std::memory_order_release);
      if (idle >= 2 * stall_) {
        if (!marker_.empty()) {
          std::ofstream out(marker_);
          out << "gurita_daemon watchdog: step loop stalled for " << idle
              << "s; recover from the last auto-checkpoint\n";
          out.flush();
        }
        std::abort();
      }
    }
  }

  const double stall_;
  const std::string marker_;
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<bool> soft_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

const char* to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNew:
      return "reject-new";
    case ShedPolicy::kDropLargest:
      return "drop-largest";
    case ShedPolicy::kDegradeToFifo:
      return "degrade-to-fifo";
  }
  return "?";
}

ShedPolicy shed_policy_from_name(const std::string& name) {
  if (name == "reject-new") return ShedPolicy::kRejectNew;
  if (name == "drop-largest") return ShedPolicy::kDropLargest;
  if (name == "degrade-to-fifo") return ShedPolicy::kDegradeToFifo;
  throw ConfigError("--shed-policy",
                    {{name, "unknown policy (expected reject-new, "
                            "drop-largest or degrade-to-fifo)"}});
}

struct Daemon::Impl {
  /// Maps one engine job to its external identity. Indexed by the CURRENT
  /// engine job id; compaction rebuilds the vector through the remap.
  struct JobMeta {
    std::uint64_t ext_id = 0;       ///< feed id / generator index
    std::uint64_t ext_cf_base = 0;  ///< first external coflow id of the job
    std::uint64_t sim_cf_base = 0;  ///< first engine coflow id of the job
  };

  explicit Impl(DaemonOptions options) : options_(std::move(options)) {
    validate();
    build();
  }

  // ------------------------------------------------------------------ setup

  void validate() {
    std::vector<ConfigError::Issue> issues;
    const DaemonOptions& o = options_;
    if (o.queue_capacity < 1)
      issues.push_back({"queue_capacity", "must be at least 1"});
    if (o.wait_window < 1)
      issues.push_back({"wait_window", "must be at least 1"});
    const Watermarks& wm = o.watermarks;
    if (wm.active_flows_low > wm.active_flows_high)
      issues.push_back({"watermarks.active_flows",
                        "low watermark exceeds high (hysteresis inverted)"});
    if (wm.calendar_low > wm.calendar_high)
      issues.push_back({"watermarks.calendar",
                        "low watermark exceeds high (hysteresis inverted)"});
    if (wm.p99_wait_low > wm.p99_wait_high)
      issues.push_back({"watermarks.p99_wait",
                        "low watermark exceeds high (hysteresis inverted)"});
    if (wm.p99_wait_high != wm.p99_wait_high)
      issues.push_back({"watermarks.p99_wait", "NaN threshold"});
    if (o.compact_every < 0)
      issues.push_back({"compact_every", "must be >= 0"});
    if (o.checkpoint_every < 0)
      issues.push_back({"checkpoint_every", "must be >= 0"});
    if (o.checkpoint_every > 0 && o.checkpoint_path.empty())
      issues.push_back(
          {"checkpoint_path", "required when checkpoint_every > 0"});
    if (o.halt_after_checkpoints > 0 && o.checkpoint_every <= 0)
      issues.push_back({"halt_after_checkpoints",
                        "requires a checkpoint cadence (checkpoint_every)"});
    if (!(o.drain_deadline_wall > 0))
      issues.push_back({"drain_deadline_wall", "must be > 0"});
    if (!(o.drain_slice > 0))
      issues.push_back({"drain_slice", "must be > 0"});
    if (o.drain_after_sim_time < 0)
      issues.push_back({"drain_after_sim_time", "must be >= 0"});
    if (o.watchdog_stall < 0)
      issues.push_back({"watchdog_stall", "must be >= 0"});
    if (o.sample_every < 0)
      issues.push_back({"sample_every", "must be >= 0"});
    if (o.sample_every > 0 && o.trace_mask == 0)
      issues.push_back({"sample_every",
                        "sampling emits trace records; set a trace mask"});
    if (!(o.max_sim_time > 0))
      issues.push_back({"max_sim_time", "must be > 0"});
    if (!issues.empty()) throw ConfigError("daemon options", issues);
  }

  void build() {
    FatTree::Config fabric_config;
    fabric_config.k = options_.fat_tree_k;
    fabric_config.link_capacity = options_.link_capacity;
    fabric_config.ecmp_salt = options_.ecmp_salt;
    fabric_ = std::make_unique<FatTree>(fabric_config);

    if (options_.use_feed) {
      // The feed may have been parsed before the fabric size was known;
      // re-check endpoints against the real host count so a bad job fails
      // here, aggregated, instead of at its admission instant.
      std::vector<ConfigError::Issue> issues;
      for (const FeedJob& job : options_.feed) {
        try {
          gurita::validate(job.spec, fabric_->num_hosts());
        } catch (const std::logic_error& e) {
          issues.push_back(
              {"feed job " + std::to_string(job.id), e.what()});
        }
      }
      if (!issues.empty()) throw ConfigError("daemon feed", issues);
    } else {
      OpenLoopGenerator::Config gen_config = options_.open_loop;
      gen_config.shape.num_hosts = fabric_->num_hosts();
      gen_.emplace(gen_config);
    }

    scheduler_ = std::make_unique<ServiceScheduler>(
        make_scheduler(options_.scheduler));

    std::uint32_t mask = options_.trace_mask;
    if (options_.sample_every > 0) mask |= obs::TraceRecorder::kTimelineKinds;
    if (mask != 0) recorder_.emplace(mask);

    Simulator::Config sim_config;
    sim_config.max_time = options_.max_sim_time;
    if (recorder_) sim_config.trace = &*recorder_;
    if (options_.sample_every > 0) {
      obs::IntervalSampler::Config sampler_config;
      sampler_config.every = options_.sample_every;
      sampler_.emplace(sampler_config);
      accountant_.emplace();
      sim_config.sampler = &*sampler_;
      sim_config.memory = &*accountant_;
    }
    sim_ = std::make_unique<Simulator>(*fabric_, *scheduler_, sim_config);

    next_compact_ = options_.compact_every;
    next_checkpoint_ = options_.checkpoint_every;
  }

  // ------------------------------------------------------ trace emission

  void emit(obs::TraceRecord record) {
    if (recorder_) recorder_->emit(record);
  }

  // ------------------------------------------------------------ job source

  /// Stages the next source job into staged_ (a one-job lookahead unifying
  /// the feed and the generator). Returns false when the source is
  /// exhausted (or the admission budget is spent).
  bool stage_next() {
    if (staged_) return true;
    if (options_.use_feed) {
      if (next_source_ >= options_.feed.size()) return false;
      staged_ = options_.feed[next_source_];
    } else {
      if (options_.max_jobs > 0 && next_source_ >= options_.max_jobs)
        return false;
      FeedJob job;
      job.id = gen_->cursor().next_index;
      job.spec = gen_->next();
      staged_ = std::move(job);
    }
    ++next_source_;
    return true;
  }

  // ------------------------------------------------ admission / shedding

  [[nodiscard]] Time wait_p99() const {
    if (waits_.empty()) return 0;
    std::vector<Time> scratch(waits_.begin(), waits_.end());
    const std::size_t idx = percentile_rank_index(0.99, scratch.size());
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(idx),
                     scratch.end());
    return scratch[idx];
  }

  void push_wait(Time wait) {
    if (waits_.size() < options_.wait_window) {
      waits_.push_back(wait);
    } else {
      waits_[static_cast<std::size_t>(waits_total_ % options_.wait_window)] =
          wait;
    }
    ++waits_total_;
  }

  /// Hysteresis filter over the three overload signals; under
  /// degrade-to-fifo the overload bit doubles as the degraded bit.
  void refresh_overload() {
    const std::size_t flows = sim_->active_flow_count();
    const std::size_t calendar = sim_->calendar_size();
    const Time p99 = wait_p99();
    const Watermarks& wm = options_.watermarks;
    const bool any_high = flows >= wm.active_flows_high ||
                          calendar >= wm.calendar_high ||
                          p99 >= wm.p99_wait_high;
    const bool all_low = flows < wm.active_flows_low &&
                         calendar < wm.calendar_low && p99 < wm.p99_wait_low;
    if (!overloaded_ && any_high) {
      overloaded_ = true;
      if (options_.shed_policy == ShedPolicy::kDegradeToFifo) enter_degrade();
    } else if (overloaded_ && all_low) {
      overloaded_ = false;
      if (degraded_) leave_degrade();
    }
  }

  void enter_degrade() {
    degraded_ = true;
    scheduler_->set_degraded(true);
    ++degrade_spells_;
    obs::TraceRecord rec;
    rec.kind = obs::TraceEventKind::kDegrade;
    rec.time = sim_->now();
    rec.i0 = 1;
    rec.i1 = static_cast<std::int32_t>(queue_.size());
    emit(rec);
  }

  void leave_degrade() {
    degraded_ = false;
    scheduler_->set_degraded(false);
    obs::TraceRecord rec;
    rec.kind = obs::TraceEventKind::kDegrade;
    rec.time = sim_->now();
    rec.i0 = 0;
    rec.i1 = static_cast<std::int32_t>(queue_.size());
    emit(rec);
  }

  void admit_now(FeedJob job) {
    const Time now = sim_->now();
    const Time wait = std::max(0.0, now - job.spec.arrival_time);
    const std::uint64_t sim_cf_base = sim_->state().coflow_count();
    const JobId sim_id = sim_->admit(job.spec);
    GURITA_CHECK_MSG(sim_id.value() == jobs_meta_.size(),
                     "daemon job ledger out of sync with the engine");
    jobs_meta_.push_back({job.id, next_ext_coflow_, sim_cf_base});
    next_ext_coflow_ += job.spec.coflows.size();
    push_wait(wait);
    ++admitted_;
    peak_live_ = std::max(peak_live_, jobs_meta_.size());

    obs::TraceRecord rec;
    rec.kind = obs::TraceEventKind::kAdmit;
    rec.time = now;
    rec.job = job.id;
    rec.coflow = sim_id.value();
    rec.v0 = job.spec.arrival_time;
    rec.v1 = wait;
    rec.i0 = static_cast<std::int32_t>(queue_.size());
    emit(rec);
  }

  void shed(const FeedJob& job, ShedReason reason) {
    ++shed_total_;
    if (reason == ShedReason::kQueueFull) ++shed_queue_full_;
    if (reason == ShedReason::kDrain) ++shed_drain_;

    obs::TraceRecord rec;
    rec.kind = obs::TraceEventKind::kShed;
    rec.time = sim_->now();
    rec.job = job.id;
    rec.i0 = static_cast<std::int32_t>(options_.shed_policy);
    rec.i1 = static_cast<std::int32_t>(reason);
    rec.i2 = static_cast<std::int32_t>(queue_.size());
    rec.v0 = job.spec.total_bytes();
    rec.v1 = job.spec.arrival_time;
    emit(rec);
  }

  /// Admits the queued backlog FIFO while the overload bit is clear.
  void service_queue() {
    while (!overloaded_ && !queue_.empty()) {
      FeedJob job = std::move(queue_.front());
      queue_.pop_front();
      admit_now(std::move(job));
    }
  }

  /// Routes one arrived job: straight into the engine when healthy (or
  /// degraded — degrade-to-fifo never drops), into the bounded queue under
  /// overload, through the shed policy on overflow.
  void dispatch(FeedJob job) {
    if (!overloaded_ || degraded_) {
      admit_now(std::move(job));
      return;
    }
    if (queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(job));
      peak_queue_ = std::max(peak_queue_, queue_.size());
      return;
    }
    switch (options_.shed_policy) {
      case ShedPolicy::kRejectNew:
        shed(job, ShedReason::kQueueFull);
        return;
      case ShedPolicy::kDropLargest: {
        // Evict the largest job among queue + arrival. Ties break toward
        // the arrival (the latest), then the earliest-queued — any fixed
        // rule works, it just has to be a rule.
        std::size_t victim = 0;
        Bytes victim_bytes = queue_.front().spec.total_bytes();
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          const Bytes b = queue_[i].spec.total_bytes();
          if (b > victim_bytes) {
            victim = i;
            victim_bytes = b;
          }
        }
        if (job.spec.total_bytes() >= victim_bytes) {
          shed(job, ShedReason::kQueueFull);
          return;
        }
        shed(queue_[victim], ShedReason::kQueueFull);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
        queue_.push_back(std::move(job));
        return;
      }
      case ShedPolicy::kDegradeToFifo:
        // Unreachable: degraded_ is set whenever overloaded_ under this
        // policy, so the first branch admitted the job.
        admit_now(std::move(job));
        return;
    }
  }

  // ---------------------------------------------------------- compaction

  /// Harvests a compaction's evicted results into the external-id ledger,
  /// then rebuilds the meta table through the remap the scheduler wrapper
  /// captured. The engine skips on_compact entirely when nothing was
  /// evicted, so the remap is only read when it is fresh.
  void harvest(const Simulator::Compaction& compaction) {
    for (const SimResults::JobResult& jr : compaction.jobs) {
      const JobMeta& meta = jobs_meta_[jr.id.value()];
      SimResults::JobResult out = jr;
      out.id = JobId{meta.ext_id};
      ledger_jobs_.push_back(out);
      makespan_ = std::max(makespan_, jr.finish);
      ++completed_;
    }
    for (const SimResults::CoflowResult& cr : compaction.coflows) {
      const JobMeta& meta = jobs_meta_[cr.job.value()];
      SimResults::CoflowResult out = cr;
      out.id = CoflowId{meta.ext_cf_base + (cr.id.value() - meta.sim_cf_base)};
      out.job = JobId{meta.ext_id};
      ledger_coflows_.push_back(out);
    }
    if (compaction.jobs_evicted == 0) return;
    const CompactionRemap& remap = scheduler_->last_remap();
    std::vector<JobMeta> survivors;
    survivors.reserve(jobs_meta_.size() - compaction.jobs_evicted);
    for (std::size_t old = 0; old < jobs_meta_.size(); ++old) {
      if (remap.job_map[old] == CompactionRemap::kEvicted) continue;
      JobMeta meta = jobs_meta_[old];
      meta.sim_cf_base = remap.coflow_map[meta.sim_cf_base];
      survivors.push_back(meta);
    }
    jobs_meta_ = std::move(survivors);
  }

  void do_compact() {
    harvest(sim_->compact());
    ++compactions_;
  }

  // ------------------------------------------------- checkpoint / recover

  [[nodiscard]] std::uint64_t source_fingerprint() const {
    if (options_.use_feed) return feed_fingerprint(options_.feed);
    std::uint64_t h = 0xcbf29ce484222325ull;
    const OpenLoopGenerator::Config& g = options_.open_loop;
    h = fnv_step(h, g.shape.seed);
    h = fnv_step(h, static_cast<std::uint64_t>(fabric_->num_hosts()));
    h = fnv_step(h, static_cast<std::uint64_t>(g.shape.structure));
    h = fnv_step(h, static_cast<std::uint64_t>(g.shape.max_width));
    h = fnv_double(h, g.shape.width_pareto_alpha);
    h = fnv_double(h, g.shape.flow_skew_sigma);
    h = fnv_double(h, g.shape.stage_skew_sigma);
    h = fnv_step(h, g.shape.category_weights.size());
    for (const double w : g.shape.category_weights) h = fnv_double(h, w);
    h = fnv_step(h, static_cast<std::uint64_t>(g.arrivals));
    h = fnv_double(h, g.load);
    h = fnv_double(h, g.service_rate);
    h = fnv_double(h, g.mean_interarrival);
    h = fnv_step(h, static_cast<std::uint64_t>(g.calibration_jobs));
    h = fnv_step(h, static_cast<std::uint64_t>(g.burst_size));
    h = fnv_double(h, g.burst_spacing);
    h = fnv_step(h, options_.max_jobs);
    return h;
  }

  void write_config_section(snapshot::Writer& w) const {
    const std::size_t token = w.begin_section();
    w.str(options_.scheduler);
    w.i32(options_.fat_tree_k);
    w.f64(options_.link_capacity);
    w.u64(options_.ecmp_salt);
    w.u8(options_.use_feed ? 0 : 1);
    w.u64(source_fingerprint());
    w.i32(static_cast<std::int32_t>(options_.shed_policy));
    w.u64(options_.queue_capacity);
    w.u64(options_.watermarks.active_flows_high);
    w.u64(options_.watermarks.active_flows_low);
    w.u64(options_.watermarks.calendar_high);
    w.u64(options_.watermarks.calendar_low);
    w.f64(options_.watermarks.p99_wait_high);
    w.f64(options_.watermarks.p99_wait_low);
    w.u64(options_.wait_window);
    w.f64(options_.compact_every);
    w.f64(options_.checkpoint_every);
    w.u32(recorder_ ? recorder_->mask() : 0);
    w.f64(options_.sample_every);
    w.u64(options_.max_jobs);
    w.end_section(token);
  }

  /// Reads the checkpoint's config section and aggregates every field that
  /// disagrees with this daemon's options into one ConfigError — resuming
  /// under a different configuration would diverge silently, which is the
  /// one thing a recovery path must never do.
  void check_config_section(snapshot::Reader& r,
                            const std::string& path) const {
    std::vector<ConfigError::Issue> issues;
    const auto check_str = [&](const char* name, const std::string& expect,
                               const std::string& got) {
      if (expect != got)
        issues.push_back({name, "checkpoint has '" + got +
                                    "', options say '" + expect + "'"});
    };
    const auto check_u64 = [&](const char* name, std::uint64_t expect,
                               std::uint64_t got) {
      if (expect != got)
        issues.push_back({name, "checkpoint has " + std::to_string(got) +
                                    ", options say " +
                                    std::to_string(expect)});
    };
    const auto check_f64 = [&](const char* name, double expect, double got) {
      if (std::bit_cast<std::uint64_t>(expect) !=
          std::bit_cast<std::uint64_t>(got))
        issues.push_back({name, "checkpoint has " + std::to_string(got) +
                                    ", options say " +
                                    std::to_string(expect)});
    };

    const std::size_t end = r.begin_section();
    check_str("scheduler", options_.scheduler, r.str());
    check_u64("fat_tree_k", static_cast<std::uint64_t>(options_.fat_tree_k),
              static_cast<std::uint64_t>(r.i32()));
    check_f64("link_capacity", options_.link_capacity, r.f64());
    check_u64("ecmp_salt", options_.ecmp_salt, r.u64());
    check_u64("source kind", options_.use_feed ? 0 : 1, r.u8());
    check_u64("source fingerprint", source_fingerprint(), r.u64());
    check_u64("shed_policy",
              static_cast<std::uint64_t>(options_.shed_policy),
              static_cast<std::uint64_t>(r.i32()));
    check_u64("queue_capacity", options_.queue_capacity, r.u64());
    check_u64("watermarks.active_flows_high",
              options_.watermarks.active_flows_high, r.u64());
    check_u64("watermarks.active_flows_low",
              options_.watermarks.active_flows_low, r.u64());
    check_u64("watermarks.calendar_high", options_.watermarks.calendar_high,
              r.u64());
    check_u64("watermarks.calendar_low", options_.watermarks.calendar_low,
              r.u64());
    check_f64("watermarks.p99_wait_high", options_.watermarks.p99_wait_high,
              r.f64());
    check_f64("watermarks.p99_wait_low", options_.watermarks.p99_wait_low,
              r.f64());
    check_u64("wait_window", options_.wait_window, r.u64());
    check_f64("compact_every", options_.compact_every, r.f64());
    check_f64("checkpoint_every", options_.checkpoint_every, r.f64());
    check_u64("trace mask", recorder_ ? recorder_->mask() : 0, r.u32());
    check_f64("sample_every", options_.sample_every, r.f64());
    check_u64("max_jobs", options_.max_jobs, r.u64());
    r.skip_to(end);
    if (!issues.empty())
      throw ConfigError("--recover-from " + path, issues);
  }

  void write_dynamic_section(snapshot::Writer& w) const {
    const std::size_t token = w.begin_section();
    w.u64(next_source_);
    if (gen_) {
      w.u64(gen_->cursor().next_index);
      w.f64(gen_->cursor().clock);
    } else {
      w.u64(0);
      w.f64(0);
    }
    w.boolean(staged_.has_value());
    if (staged_) {
      w.u64(staged_->id);
      snapshot::write_job_spec(w, staged_->spec);
    }
    w.u64(queue_.size());
    for (const FeedJob& job : queue_) {
      w.u64(job.id);
      snapshot::write_job_spec(w, job.spec);
    }
    w.boolean(overloaded_);
    w.boolean(degraded_);
    w.u64(admitted_);
    w.u64(shed_total_);
    w.u64(shed_queue_full_);
    w.u64(shed_drain_);
    w.u64(completed_);
    w.u64(compactions_);
    w.u64(checkpoints_);
    w.u64(degrade_spells_);
    w.f64(next_compact_);
    w.f64(next_checkpoint_);
    w.f64(makespan_);
    w.u64(next_ext_coflow_);
    w.u64(waits_total_);
    w.u64(waits_.size());
    for (const Time wait : waits_) w.f64(wait);
    w.u64(peak_queue_);
    w.u64(peak_flows_);
    w.u64(peak_calendar_);
    w.u64(peak_live_);
    w.u64(jobs_meta_.size());
    for (const JobMeta& meta : jobs_meta_) {
      w.u64(meta.ext_id);
      w.u64(meta.ext_cf_base);
      w.u64(meta.sim_cf_base);
    }
    w.u64(ledger_jobs_.size());
    for (const SimResults::JobResult& jr : ledger_jobs_) {
      w.u64(jr.id.value());
      w.f64(jr.arrival);
      w.f64(jr.finish);
      w.f64(jr.total_bytes);
      w.i32(jr.num_stages);
      w.boolean(jr.failed);
    }
    w.u64(ledger_coflows_.size());
    for (const SimResults::CoflowResult& cr : ledger_coflows_) {
      w.u64(cr.id.value());
      w.u64(cr.job.value());
      w.i32(cr.stage);
      w.f64(cr.release);
      w.f64(cr.finish);
      w.f64(cr.total_bytes);
      w.boolean(cr.failed);
    }
    // The in-sim population: an open-horizon resume cannot rebuild the
    // admitted job set from the original inputs (it grew at runtime), so
    // the specs travel in the snapshot, in engine-id order, and recover()
    // resubmits them before Simulator::restore.
    w.u64(jobs_meta_.size());
    for (std::size_t i = 0; i < jobs_meta_.size(); ++i)
      snapshot::write_job_spec(w, sim_->state().job(JobId{i}).spec);
    w.end_section(token);
  }

  [[nodiscard]] std::vector<JobSpec> read_dynamic_section(
      snapshot::Reader& r) {
    const std::size_t end = r.begin_section();
    next_source_ = r.u64();
    gen_cursor_.next_index = r.u64();
    gen_cursor_.clock = r.f64();
    if (r.boolean()) {
      FeedJob job;
      job.id = r.u64();
      job.spec = snapshot::read_job_spec(r);
      staged_ = std::move(job);
    }
    const std::uint64_t queued = r.u64();
    for (std::uint64_t i = 0; i < queued; ++i) {
      FeedJob job;
      job.id = r.u64();
      job.spec = snapshot::read_job_spec(r);
      queue_.push_back(std::move(job));
    }
    overloaded_ = r.boolean();
    degraded_ = r.boolean();
    admitted_ = r.u64();
    shed_total_ = r.u64();
    shed_queue_full_ = r.u64();
    shed_drain_ = r.u64();
    completed_ = r.u64();
    compactions_ = r.u64();
    checkpoints_ = r.u64();
    degrade_spells_ = r.u64();
    next_compact_ = r.f64();
    next_checkpoint_ = r.f64();
    makespan_ = r.f64();
    next_ext_coflow_ = r.u64();
    waits_total_ = r.u64();
    const std::uint64_t nwaits = r.u64();
    waits_.clear();
    for (std::uint64_t i = 0; i < nwaits; ++i) waits_.push_back(r.f64());
    peak_queue_ = r.u64();
    peak_flows_ = r.u64();
    peak_calendar_ = r.u64();
    peak_live_ = r.u64();
    const std::uint64_t nmeta = r.u64();
    jobs_meta_.clear();
    for (std::uint64_t i = 0; i < nmeta; ++i) {
      JobMeta meta;
      meta.ext_id = r.u64();
      meta.ext_cf_base = r.u64();
      meta.sim_cf_base = r.u64();
      jobs_meta_.push_back(meta);
    }
    const std::uint64_t njobs = r.u64();
    ledger_jobs_.clear();
    for (std::uint64_t i = 0; i < njobs; ++i) {
      SimResults::JobResult jr;
      jr.id = JobId{r.u64()};
      jr.arrival = r.f64();
      jr.finish = r.f64();
      jr.total_bytes = r.f64();
      jr.num_stages = r.i32();
      jr.failed = r.boolean();
      ledger_jobs_.push_back(jr);
    }
    const std::uint64_t ncoflows = r.u64();
    ledger_coflows_.clear();
    for (std::uint64_t i = 0; i < ncoflows; ++i) {
      SimResults::CoflowResult cr;
      cr.id = CoflowId{r.u64()};
      cr.job = JobId{r.u64()};
      cr.stage = r.i32();
      cr.release = r.f64();
      cr.finish = r.f64();
      cr.total_bytes = r.f64();
      cr.failed = r.boolean();
      ledger_coflows_.push_back(cr);
    }
    const std::uint64_t nspecs = r.u64();
    GURITA_CHECK_MSG(nspecs == nmeta,
                     "service snapshot: spec count != ledger count");
    std::vector<JobSpec> specs;
    specs.reserve(nspecs);
    for (std::uint64_t i = 0; i < nspecs; ++i)
      specs.push_back(snapshot::read_job_spec(r));
    r.end_section(end);
    return specs;
  }

  void write_checkpoint() {
    ++checkpoints_;
    snapshot::Writer w;
    snapshot::write_header(w, snapshot::PayloadKind::kServiceState);
    write_config_section(w);
    write_dynamic_section(w);
    sim_->checkpoint(w);
    snapshot::write_snapshot_file(options_.checkpoint_path, w.take());
  }

  // ------------------------------------------------------------ main loop

  void note_peaks() {
    peak_flows_ = std::max(peak_flows_, sim_->active_flow_count());
    peak_calendar_ = std::max(peak_calendar_, sim_->calendar_size());
  }

  DaemonReport run_loop() {
    GURITA_CHECK_MSG(!spent_, "Daemon runs are one-shot");
    spent_ = true;
    if (options_.watchdog_stall > 0)
      watchdog_ = std::make_unique<Watchdog>(options_.watchdog_stall,
                                             options_.watchdog_marker);
    // Prepare the engine up front so compact()/checkpoint() are legal at
    // every boundary, including a run whose source is empty.
    if (!sim_->open()) (void)sim_->run_to(sim_->now());

    // Ratcheted slice bound for stretches where no arrival or cadence
    // bounds the horizon. run_to pauses *before* the first event at or
    // beyond the bound — it does not advance the clock to it — so the
    // bound must ratchet past now() or an idle slice would never reach a
    // far-future completion.
    Time idle_bound = 0;
    // Furthest horizon actually processed. run_to leaves now() at the last
    // event *below* the bound, so the drain_after trigger must compare
    // against the bound we ran to, not the clock — with no event near the
    // trigger the clock would never reach it.
    Time reached = sim_->now();

    while (true) {
      if (watchdog_ && watchdog_->soft_stalled()) {
        // The step loop was stalled long enough for the watchdog to notice
        // but came back before the hard abort: save a resume point and get
        // out of the way with the "halted, resume me" status.
        if (options_.checkpoint_every > 0) write_checkpoint();
        throw snapshot::HaltedError(
            "gurita_daemon: watchdog declared a stall; checkpoint written, "
            "resume with --recover-from");
      }
      if (watchdog_) watchdog_->beat();
      if (options_.poll_signals) {
        const int sig = pending_signal();
        if (sig != 0) return finish_run(sig, true);
      }
      if (options_.drain_after_sim_time > 0 &&
          reached >= options_.drain_after_sim_time)
        return finish_run(0, true);

      const bool have_next = stage_next();
      if (!have_next && !sim_->pending()) {
        if (!queue_.empty()) {
          // The fabric is idle, so whatever tripped the watermarks has
          // fully drained; release the backlog even if a zero low
          // watermark would keep the stale overload bit latched.
          overloaded_ = false;
          if (degraded_) leave_degrade();
          service_queue();
          continue;
        }
        return finish_run(0, false);  // natural end: nothing left anywhere
      }
      Time bound = have_next ? staged_->spec.arrival_time : kInf;
      if (options_.compact_every > 0)
        bound = std::min(bound, next_compact_);
      if (options_.checkpoint_every > 0)
        bound = std::min(bound, next_checkpoint_);
      if (options_.drain_after_sim_time > 0)
        bound = std::min(bound, options_.drain_after_sim_time);
      if (bound == kInf) {
        // No arrival or cadence bounds the horizon: advance in finite
        // slices so the signal latch stays responsive while draining the
        // tail organically.
        idle_bound = std::max(idle_bound, sim_->now()) + options_.drain_slice;
        bound = idle_bound;
      }
      (void)sim_->run_to(bound);
      reached = std::max(reached, bound);

      // Boundary work in fixed order — watermarks, then the queued
      // backlog, then new arrivals, then compaction, then the checkpoint
      // capturing all of it. The order is part of the determinism
      // contract: every step is a pure function of sim state + options.
      note_peaks();
      refresh_overload();
      service_queue();
      while (stage_next() && staged_->spec.arrival_time <= bound) {
        FeedJob job = std::move(*staged_);
        staged_.reset();
        dispatch(std::move(job));
      }
      if (options_.compact_every > 0 && next_compact_ <= bound) {
        do_compact();
        next_compact_ += options_.compact_every;
      }
      if (options_.checkpoint_every > 0 && next_checkpoint_ <= bound) {
        // Advance the cadence before writing so the snapshot carries the
        // post-boundary value and a recovered run doesn't re-checkpoint
        // the same boundary.
        next_checkpoint_ += options_.checkpoint_every;
        write_checkpoint();
        if (options_.halt_after_checkpoints > 0 &&
            checkpoints_ >=
                static_cast<std::uint64_t>(options_.halt_after_checkpoints))
          throw snapshot::HaltedError(
              "gurita_daemon: halted on purpose after " +
              std::to_string(checkpoints_) + " checkpoints");
      }
    }
  }

  /// Admission is over: shed the queue, drain in-flight work under the
  /// wall-clock deadline (when `drain` — a natural end arrives here with
  /// the fabric already empty), then assemble the report.
  DaemonReport finish_run(int cause, bool drain) {
    staged_.reset();  // drawn but never arrived; not admitted, not shed
    DaemonReport report;
    if (drain) {
      report.drain_cause = cause;
      obs::TraceRecord rec;
      rec.kind = obs::TraceEventKind::kDrainStart;
      rec.time = sim_->now();
      rec.i0 = cause;
      rec.i1 = static_cast<std::int32_t>(queue_.size());
      emit(rec);
      while (!queue_.empty()) {
        shed(queue_.front(), ShedReason::kDrain);
        queue_.pop_front();
      }
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.drain_deadline_wall));
      Time bound = sim_->now();
      while (sim_->pending()) {
        if (watchdog_) watchdog_->beat();
        if (std::chrono::steady_clock::now() >= deadline) {
          report.drain_deadline_expired = true;
          break;
        }
        bound += options_.drain_slice;
        if (!sim_->run_to(bound)) break;
        note_peaks();
      }
    }
    finalize(report);
    return report;
  }

  void finalize(DaemonReport& report) {
    // One last compaction harvests every terminal job still in the stores,
    // so the export is complete whatever the cadence (including compaction
    // disabled — the ledger is then filled entirely here).
    harvest(sim_->compact());

    SimResults out = sim_->partial_results();
    std::sort(ledger_jobs_.begin(), ledger_jobs_.end(),
              [](const SimResults::JobResult& a,
                 const SimResults::JobResult& b) {
                return a.id.value() < b.id.value();
              });
    std::sort(ledger_coflows_.begin(), ledger_coflows_.end(),
              [](const SimResults::CoflowResult& a,
                 const SimResults::CoflowResult& b) {
                return a.id.value() < b.id.value();
              });
    out.jobs = std::move(ledger_jobs_);
    out.coflows = std::move(ledger_coflows_);
    out.makespan = makespan_;
    if (recorder_) out.trace = recorder_->take();
    if (accountant_) {
      out.diagnostics.memory = *accountant_;
      report.peak_state_bytes =
          accountant_->peak(obs::MemoryAccountant::Subsystem::kState);
    }

    report.admitted = admitted_;
    report.shed_total = shed_total_;
    report.shed_queue_full = shed_queue_full_;
    report.shed_drain = shed_drain_;
    report.completed = completed_;
    report.compactions = compactions_;
    report.checkpoints = checkpoints_;
    report.degrade_spells = degrade_spells_;
    report.p99_wait = wait_p99();
    report.final_sim_time = sim_->now();
    report.peak_queue_depth = peak_queue_;
    report.peak_active_flows = peak_flows_;
    report.peak_calendar = peak_calendar_;
    report.peak_live_jobs = peak_live_;

    JctCollector collector;
    collector.add(out);
    report.comparison.collectors.emplace(options_.scheduler,
                                         std::move(collector));
    report.comparison.results.emplace(options_.scheduler, std::move(out));
    watchdog_.reset();
  }

  DaemonReport recover(const std::string& path) {
    const std::string payload = snapshot::read_snapshot_file(path);
    snapshot::Reader r(payload);
    if (snapshot::read_header(r) != snapshot::PayloadKind::kServiceState)
      throw snapshot::SnapshotError("not a service-daemon snapshot: " + path);
    check_config_section(r, path);
    const std::vector<JobSpec> in_sim = read_dynamic_section(r);
    for (const JobSpec& spec : in_sim) (void)sim_->submit(spec);
    sim_->restore(r);
    scheduler_->set_degraded(degraded_);
    if (gen_) gen_->restore_cursor(gen_cursor_);
    return run_loop();
  }

  // --------------------------------------------------------------- members

  DaemonOptions options_;
  std::unique_ptr<FatTree> fabric_;
  std::unique_ptr<ServiceScheduler> scheduler_;
  std::optional<obs::TraceRecorder> recorder_;
  std::optional<obs::IntervalSampler> sampler_;
  std::optional<obs::MemoryAccountant> accountant_;
  std::optional<OpenLoopGenerator> gen_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Watchdog> watchdog_;
  bool spent_ = false;

  std::uint64_t next_source_ = 0;  ///< source jobs drawn, staged_ included
  OpenLoopGenerator::Cursor gen_cursor_;  ///< recover() scratch
  std::optional<FeedJob> staged_;
  std::deque<FeedJob> queue_;
  bool overloaded_ = false;
  bool degraded_ = false;

  std::vector<Time> waits_;  ///< recent admission waits (ring, serialized)
  std::uint64_t waits_total_ = 0;

  std::vector<JobMeta> jobs_meta_;  ///< by current engine job id
  std::uint64_t next_ext_coflow_ = 0;
  std::vector<SimResults::JobResult> ledger_jobs_;
  std::vector<SimResults::CoflowResult> ledger_coflows_;
  Time makespan_ = 0;

  Time next_compact_ = 0;
  Time next_checkpoint_ = 0;

  std::uint64_t admitted_ = 0;
  std::uint64_t shed_total_ = 0;
  std::uint64_t shed_queue_full_ = 0;
  std::uint64_t shed_drain_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t degrade_spells_ = 0;
  std::size_t peak_queue_ = 0;
  std::size_t peak_flows_ = 0;
  std::size_t peak_calendar_ = 0;
  std::size_t peak_live_ = 0;
};

Daemon::Daemon(DaemonOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Daemon::~Daemon() = default;

DaemonReport Daemon::run() { return impl_->run_loop(); }

DaemonReport Daemon::recover(const std::string& snapshot_path) {
  return impl_->recover(snapshot_path);
}

}  // namespace gurita::service
