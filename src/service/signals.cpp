#include "service/signals.h"

#include <atomic>
#include <csignal>

namespace gurita::service {

namespace {

// The whole extent of state a handler may touch. Lock-free is what makes
// the store async-signal-safe; on platforms where std::atomic<int> needs a
// lock the static_assert fails the build instead of deadlocking at runtime.
std::atomic<int> g_pending_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal latch must be lock-free to be async-signal-safe");

extern "C" void latch_signal(int sig) {
  g_pending_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = latch_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking I/O promptly
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

int pending_signal() {
  return g_pending_signal.load(std::memory_order_relaxed);
}

void clear_pending_signal() {
  g_pending_signal.store(0, std::memory_order_relaxed);
}

void raise_pending_signal(int sig) {
  g_pending_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace gurita::service
