// Streaming JSONL job feed for the service daemon (DESIGN.md §15).
//
// One JSON object per line describes one job:
//
//   {"id": 7, "arrival": 0.125, "deadline": 0.5,
//    "coflows": [{"flows": [{"src": 0, "dst": 5, "bytes": 1048576}]}],
//    "deps": [[]]}
//
// `deadline` is optional (0 / absent = none); `deps` is optional and
// defaults to fully independent coflows. Blank lines and lines starting
// with '#' are skipped, mirroring the workload trace format (trace_io.h).
//
// Parsing is hardened the way trace_io's loader is: every malformed line is
// collected — bad JSON, missing fields, negative or NaN arrivals, arrivals
// that go backwards, empty coflow lists, flows with non-positive sizes or
// out-of-range endpoints, duplicate job ids, dependency indices out of
// range — and reported in ONE ConfigError listing line numbers, instead of
// dying on the first problem or (worse) admitting a half-parsed stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "coflow/job.h"

namespace gurita::service {

/// One feed line: the caller-visible job id plus the validated spec.
/// External ids are the identity jobs keep through admission, shedding,
/// compaction and export — the simulator's dense internal ids are renumbered
/// by compact() and never leave the daemon.
struct FeedJob {
  std::uint64_t id = 0;
  JobSpec spec;
};

/// Parses a JSONL feed from `in`. `context` names the source in error
/// messages ("--feed jobs.jsonl"). When `num_hosts` > 0, flow endpoints are
/// additionally range-checked against it (the daemon passes its fabric's
/// host count; pass 0 when the fabric is not known yet). Aggregates every
/// problem into one ConfigError (fault/fault.h), each issue tagged
/// "line N".
[[nodiscard]] std::vector<FeedJob> parse_feed(std::istream& in,
                                              const std::string& context,
                                              int num_hosts = 0);

/// parse_feed over a file; throws ConfigError if it cannot be opened.
[[nodiscard]] std::vector<FeedJob> load_feed(const std::string& path,
                                             int num_hosts = 0);

/// Writes `jobs` in the format parse_feed reads (doubles at max_digits10,
/// so a round-trip is value-exact).
void write_feed(std::ostream& out, const std::vector<FeedJob>& jobs);

/// Order-sensitive FNV-1a fingerprint of the whole feed (ids, arrivals,
/// deadlines, DAG shape, flow endpoints and sizes). Rides the daemon
/// checkpoint so --recover-from rejects a run resumed against a different
/// feed with a ConfigError instead of silently diverging.
[[nodiscard]] std::uint64_t feed_fingerprint(const std::vector<FeedJob>& jobs);

}  // namespace gurita::service
