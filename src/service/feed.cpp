#include "service/feed.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "fault/fault.h"

namespace gurita::service {

namespace {

/// Minimal recursive-descent JSON value parser for one feed line. Supports
/// the subset write_feed produces — objects, arrays, numbers, strings,
/// true/false/null — which is all a job description needs. Errors carry the
/// byte position so a feed issue pinpoints the corruption, not just the
/// line.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::logic_error(what + " at position " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.str), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("dangling escape in string");
      }
      v.str += text_[pos_++];
    }
    expect('"');
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      fail("malformed literal");
    }
    return v;
  }

  JsonValue null_value() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") != 0) fail("malformed literal");
    pos_ += 4;
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    v.num = std::strtod(start, &end);
    if (end == start) fail("malformed number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }
};

/// Per-line decoder: returns false (and appends issues) when the line
/// cannot yield a usable job. The caller owns cross-line checks (duplicate
/// ids, arrival monotonicity).
bool decode_job(const JsonValue& root, int line, int num_hosts, FeedJob& out,
                std::vector<ConfigError::Issue>& issues) {
  const std::string where = "line " + std::to_string(line);
  const auto issue = [&](const std::string& what) {
    issues.push_back({where, what});
  };

  if (root.kind != JsonValue::Kind::kObject) {
    issue("top-level value is not a JSON object");
    return false;
  }
  bool ok = true;

  const JsonValue* id = root.find("id");
  if (id == nullptr || id->kind != JsonValue::Kind::kNumber || id->num < 0 ||
      id->num != std::floor(id->num)) {
    issue("missing or non-integral \"id\"");
    ok = false;
  } else {
    out.id = static_cast<std::uint64_t>(id->num);
  }

  const JsonValue* arrival = root.find("arrival");
  if (arrival == nullptr || arrival->kind != JsonValue::Kind::kNumber) {
    issue("missing numeric \"arrival\"");
    ok = false;
  } else if (std::isnan(arrival->num) || arrival->num < 0 ||
             std::isinf(arrival->num)) {
    issue("arrival time must be finite and non-negative, got " +
          std::to_string(arrival->num));
    ok = false;
  } else {
    out.spec.arrival_time = arrival->num;
  }

  if (const JsonValue* deadline = root.find("deadline")) {
    if (deadline->kind != JsonValue::Kind::kNumber ||
        std::isnan(deadline->num) || deadline->num < 0) {
      issue("deadline must be a non-negative number");
      ok = false;
    } else {
      out.spec.deadline = deadline->num;
    }
  }

  const JsonValue* coflows = root.find("coflows");
  if (coflows == nullptr || coflows->kind != JsonValue::Kind::kArray) {
    issue("missing \"coflows\" array");
    return false;
  }
  if (coflows->items.empty()) {
    issue("job has no coflows");
    return false;
  }
  for (std::size_t c = 0; c < coflows->items.size(); ++c) {
    const JsonValue& cv = coflows->items[c];
    const std::string cwhere = "coflows[" + std::to_string(c) + "]";
    const JsonValue* flows =
        cv.kind == JsonValue::Kind::kObject ? cv.find("flows") : nullptr;
    if (flows == nullptr || flows->kind != JsonValue::Kind::kArray) {
      issue(cwhere + " has no \"flows\" array");
      ok = false;
      continue;
    }
    if (flows->items.empty()) {
      issue(cwhere + " has no flows");
      ok = false;
      continue;
    }
    CoflowSpec coflow;
    coflow.flows.reserve(flows->items.size());
    for (std::size_t f = 0; f < flows->items.size(); ++f) {
      const JsonValue& fv = flows->items[f];
      const std::string fwhere = cwhere + ".flows[" + std::to_string(f) + "]";
      const JsonValue* src =
          fv.kind == JsonValue::Kind::kObject ? fv.find("src") : nullptr;
      const JsonValue* dst =
          fv.kind == JsonValue::Kind::kObject ? fv.find("dst") : nullptr;
      const JsonValue* bytes =
          fv.kind == JsonValue::Kind::kObject ? fv.find("bytes") : nullptr;
      if (src == nullptr || src->kind != JsonValue::Kind::kNumber ||
          dst == nullptr || dst->kind != JsonValue::Kind::kNumber ||
          bytes == nullptr || bytes->kind != JsonValue::Kind::kNumber) {
        issue(fwhere + " needs numeric \"src\", \"dst\" and \"bytes\"");
        ok = false;
        continue;
      }
      FlowSpec flow;
      flow.src_host = static_cast<int>(src->num);
      flow.dst_host = static_cast<int>(dst->num);
      flow.size = bytes->num;
      if (std::isnan(flow.size) || flow.size <= 0) {
        issue(fwhere + " has non-positive size");
        ok = false;
      }
      if (flow.src_host < 0 || flow.dst_host < 0 ||
          flow.src_host == flow.dst_host ||
          (num_hosts > 0 &&
           (flow.src_host >= num_hosts || flow.dst_host >= num_hosts))) {
        issue(fwhere + " endpoints out of range (src " +
              std::to_string(flow.src_host) + ", dst " +
              std::to_string(flow.dst_host) +
              (num_hosts > 0 ? ", hosts " + std::to_string(num_hosts) : "") +
              ")");
        ok = false;
      }
      coflow.flows.push_back(flow);
    }
    out.spec.coflows.push_back(std::move(coflow));
  }

  const int n = static_cast<int>(out.spec.coflows.size());
  if (const JsonValue* deps = root.find("deps")) {
    if (deps->kind != JsonValue::Kind::kArray ||
        deps->items.size() != static_cast<std::size_t>(n)) {
      issue("\"deps\" must be an array with one entry per coflow");
      return false;
    }
    out.spec.deps.reserve(deps->items.size());
    for (std::size_t c = 0; c < deps->items.size(); ++c) {
      const JsonValue& dv = deps->items[c];
      if (dv.kind != JsonValue::Kind::kArray) {
        issue("deps[" + std::to_string(c) + "] is not an array");
        return false;
      }
      std::vector<int> entry;
      entry.reserve(dv.items.size());
      for (const JsonValue& d : dv.items) {
        if (d.kind != JsonValue::Kind::kNumber || d.num != std::floor(d.num)) {
          issue("deps[" + std::to_string(c) + "] has a non-integral index");
          ok = false;
          continue;
        }
        const int dep = static_cast<int>(d.num);
        if (dep < 0 || dep >= n) {
          issue("deps[" + std::to_string(c) + "] references coflow " +
                std::to_string(dep) + ", job has " + std::to_string(n));
          ok = false;
          continue;
        }
        entry.push_back(dep);
      }
      out.spec.deps.push_back(std::move(entry));
    }
  } else {
    out.spec.deps.assign(static_cast<std::size_t>(n), {});
  }

  if (!ok) return false;
  // Full structural validation (DAG acyclicity, self-deps) on the
  // assembled spec — same gate submit()/admit() apply, surfaced here with
  // the line number instead of deep inside the daemon loop.
  try {
    validate(out.spec, num_hosts > 0 ? num_hosts
                                     : std::numeric_limits<int>::max());
  } catch (const std::logic_error& e) {
    issue(e.what());
    return false;
  }
  return true;
}

void append_double(std::string& line, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  line += buf;
}

}  // namespace

std::vector<FeedJob> parse_feed(std::istream& in, const std::string& context,
                                int num_hosts) {
  std::vector<FeedJob> jobs;
  std::vector<ConfigError::Issue> issues;
  std::set<std::uint64_t> seen_ids;
  Time last_arrival = 0;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::string where = "line " + std::to_string(lineno);
    JsonValue root;
    try {
      root = JsonParser(line).parse();
    } catch (const std::logic_error& e) {
      issues.push_back({where, std::string("bad JSON: ") + e.what()});
      continue;
    }
    FeedJob job;
    if (!decode_job(root, lineno, num_hosts, job, issues)) continue;
    if (!seen_ids.insert(job.id).second) {
      issues.push_back({where,
                        "duplicate job id " + std::to_string(job.id)});
      continue;
    }
    if (job.spec.arrival_time < last_arrival) {
      issues.push_back(
          {where, "arrival " + std::to_string(job.spec.arrival_time) +
                      " goes backwards (previous " +
                      std::to_string(last_arrival) +
                      "); the feed must be sorted by arrival"});
      continue;
    }
    last_arrival = job.spec.arrival_time;
    jobs.push_back(std::move(job));
  }
  if (!issues.empty()) throw ConfigError(context, std::move(issues));
  return jobs;
}

std::vector<FeedJob> load_feed(const std::string& path, int num_hosts) {
  std::ifstream in(path);
  if (!in)
    throw ConfigError("--feed",
                      {{path, "cannot open feed file for reading"}});
  return parse_feed(in, "--feed " + path, num_hosts);
}

void write_feed(std::ostream& out, const std::vector<FeedJob>& jobs) {
  std::string line;
  for (const FeedJob& job : jobs) {
    line.clear();
    line += "{\"id\":";
    line += std::to_string(job.id);
    line += ",\"arrival\":";
    append_double(line, job.spec.arrival_time);
    if (job.spec.deadline > 0) {
      line += ",\"deadline\":";
      append_double(line, job.spec.deadline);
    }
    line += ",\"coflows\":[";
    for (std::size_t c = 0; c < job.spec.coflows.size(); ++c) {
      if (c != 0) line += ',';
      line += "{\"flows\":[";
      const CoflowSpec& coflow = job.spec.coflows[c];
      for (std::size_t f = 0; f < coflow.flows.size(); ++f) {
        if (f != 0) line += ',';
        const FlowSpec& flow = coflow.flows[f];
        line += "{\"src\":";
        line += std::to_string(flow.src_host);
        line += ",\"dst\":";
        line += std::to_string(flow.dst_host);
        line += ",\"bytes\":";
        append_double(line, flow.size);
        line += '}';
      }
      line += "]}";
    }
    line += "],\"deps\":[";
    for (std::size_t c = 0; c < job.spec.deps.size(); ++c) {
      if (c != 0) line += ',';
      line += '[';
      for (std::size_t d = 0; d < job.spec.deps[c].size(); ++d) {
        if (d != 0) line += ',';
        line += std::to_string(job.spec.deps[c][d]);
      }
      line += ']';
    }
    line += "]}\n";
    out << line;
  }
}

std::uint64_t feed_fingerprint(const std::vector<FeedJob>& jobs) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(jobs.size());
  for (const FeedJob& job : jobs) {
    mix(job.id);
    mix_double(job.spec.arrival_time);
    mix_double(job.spec.deadline);
    mix(job.spec.coflows.size());
    for (const CoflowSpec& coflow : job.spec.coflows) {
      mix(coflow.flows.size());
      for (const FlowSpec& flow : coflow.flows) {
        mix(static_cast<std::uint64_t>(flow.src_host));
        mix(static_cast<std::uint64_t>(flow.dst_host));
        mix_double(flow.size);
      }
    }
    for (const std::vector<int>& deps : job.spec.deps) {
      mix(deps.size());
      for (int d : deps) mix(static_cast<std::uint64_t>(d));
    }
  }
  return h;
}

}  // namespace gurita::service
