// Open-horizon scheduler daemon (DESIGN.md §15).
//
// The batch harness (exp/experiment.h) answers "how fast does this trace
// finish"; the daemon answers the operational questions around it: what
// happens when jobs keep arriving, when offered load exceeds capacity, when
// the operator sends SIGTERM, when the process is SIGKILLed mid-run. It
// drives one simulator through the PR-5 prepare/step/collect decomposition
// in sim-time slices (run_to), admitting jobs at their arrival instants
// from either a JSONL feed (feed.h) or the open-loop generator
// (workload/open_loop.h), and layers four robustness mechanisms on top:
//
//  * Admission control / backpressure — a bounded admission queue with
//    hysteresis watermarks on active-flow count, calendar size and the p99
//    admission wait over a recent window. Overflow triggers a deterministic
//    shed policy; every shed is a typed kShed trace record.
//  * Graceful drain — a latched SIGTERM/SIGINT (signals.h), the
//    drain_after_sim_time test hook, or source exhaustion stops admission;
//    in-flight work drains to completion under a wall-clock deadline and
//    results export atomically.
//  * Crash recovery — periodic auto-checkpoints (snapshot v3,
//    kServiceState) wrapping a full simulator snapshot with the daemon's
//    own state: source cursor, admission queue, external-id ledger,
//    overload flags. recover() resumes byte-identically, queued-unadmitted
//    jobs included. A watchdog thread detects a stalled step loop,
//    checkpoints at the next boundary and aborts with the exit-75 resume
//    idiom.
//  * State compaction — Simulator::compact() on a sim-time cadence evicts
//    terminal jobs, keeping engine memory O(active); the daemon carries
//    evicted results forward in an external-id ledger so the final export
//    is indistinguishable from an uncompacted run's populations.
//
// Determinism: every decision (admit, queue, shed, degrade, compact,
// checkpoint) happens at an event boundary and is a pure function of
// simulation state and the options, so identical feed+seed+options produce
// byte-identical traces, exports and checkpoints; wall-clock only ever
// *ends* things early (drain deadline, watchdog), never reorders them.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "exp/experiment.h"
#include "flowsim/simulator.h"
#include "obs/memory.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "service/feed.h"
#include "topology/fattree.h"
#include "workload/open_loop.h"

namespace gurita::service {

/// What to do with a job that arrives while the admission queue is full.
enum class ShedPolicy : std::int32_t {
  kRejectNew = 0,      ///< drop the arriving job
  kDropLargest = 1,    ///< evict the largest queued-or-arriving job by bytes
  kDegradeToFifo = 2,  ///< never drop: admit directly under FIFO tiers
};

[[nodiscard]] const char* to_string(ShedPolicy policy);
/// Inverse of to_string ("reject-new", "drop-largest", "degrade-to-fifo");
/// throws ConfigError on an unknown name.
[[nodiscard]] ShedPolicy shed_policy_from_name(const std::string& name);

/// Why a job was shed (kShed record field i1).
enum class ShedReason : std::int32_t {
  kQueueFull = 0,  ///< admission queue overflow under overload
  kDrain = 1,      ///< queued at drain start; never admitted
};

/// Overload hysteresis thresholds. The daemon enters overload when ANY
/// `high` is reached and leaves it only when EVERY signal is back under its
/// `low` — the classic two-threshold filter that keeps the overload bit
/// from flapping at the boundary. Defaults are effectively "off" (sized for
/// fabrics far larger than the tests drive); overload tests lower them.
struct Watermarks {
  std::size_t active_flows_high = 200'000;
  std::size_t active_flows_low = 160'000;
  std::size_t calendar_high = 1'000'000;
  std::size_t calendar_low = 800'000;
  /// p99 admission wait (sim seconds) over the recent window.
  Time p99_wait_high = std::numeric_limits<Time>::infinity();
  Time p99_wait_low = std::numeric_limits<Time>::infinity();
};

struct DaemonOptions {
  std::string scheduler = "gurita";
  int fat_tree_k = 4;
  Rate link_capacity = gbps(10.0);
  std::uint64_t ecmp_salt = 0;

  /// Job source: a parsed feed when `use_feed`, else the open-loop
  /// generator (shape/arrivals/load from `open_loop`, stopping after
  /// `max_jobs` admissions-or-sheds; 0 = unbounded, drain on signal only).
  bool use_feed = false;
  std::vector<FeedJob> feed;
  OpenLoopGenerator::Config open_loop;
  std::uint64_t max_jobs = 500;

  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  std::size_t queue_capacity = 64;
  Watermarks watermarks;
  /// Recent-window size for the p99 admission-wait watermark.
  std::size_t wait_window = 512;

  /// Sim-time cadence of Simulator::compact(); 0 disables compaction
  /// (memory then grows with ever-admitted, as batch runs do).
  Time compact_every = 0.25;

  /// Sim-time cadence of auto-checkpoints to `checkpoint_path` (atomic
  /// overwrite, latest wins); 0 disables.
  Time checkpoint_every = 0;
  std::string checkpoint_path;
  /// Crash simulation: throw snapshot::HaltedError after this many
  /// checkpoints (drivers exit 75, the resume idiom); 0 = never.
  int halt_after_checkpoints = 0;

  /// Wall-clock budget for the post-admission drain; when it expires the
  /// export covers what completed (partial results are still atomic).
  double drain_deadline_wall = 60.0;
  /// Sim-seconds per run_to slice during drain and idle stretches — the
  /// signal-polling granularity once no arrival bounds the horizon.
  Time drain_slice = 0.25;
  /// Deterministic drain trigger at a sim time (tests, CI): 0 = off.
  Time drain_after_sim_time = 0;
  /// Poll the process signal latch (signals.h). Tests running several
  /// daemons concurrently turn this off — the latch is process-wide.
  bool poll_signals = true;

  /// Watchdog: wall seconds without the step loop reaching a boundary
  /// before declaring a soft stall (checkpoint + HaltedError at the next
  /// boundary) and, at twice that, a hard stall (marker file + abort).
  /// 0 disables the watchdog thread entirely.
  double watchdog_stall = 0;
  std::string watchdog_marker;

  /// Trace kinds to record (obs/trace.h); 0 attaches no recorder. The
  /// service kinds (kAdmit/kShed/kDrainStart/kCompact/kDegrade) are in the
  /// default mask.
  std::uint32_t trace_mask = 0;
  /// Interval-sampler cadence (kSample/kMemSample timelines plus the
  /// MemoryAccountant peaks in the report); 0 = off. Requires a trace mask
  /// that includes the timeline kinds.
  Time sample_every = 0;

  /// Hard wall on simulated time (deadlock guard), forwarded to the engine.
  Time max_sim_time = std::numeric_limits<Time>::infinity();
};

struct DaemonReport {
  /// One-entry comparison (keyed by the scheduler name) ready for
  /// export_traces: the ledger-merged populations, engine counters and the
  /// full trace.
  ComparisonResult comparison;

  std::uint64_t admitted = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_drain = 0;
  /// Terminal jobs harvested (completed + failed).
  std::uint64_t completed = 0;
  std::uint64_t compactions = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t degrade_spells = 0;

  /// p99 admission wait (sim seconds) over the recent window (wait_window)
  /// at the end of the run — the daemon's "scheduling latency" headline.
  /// Window-bounded so a recovered run reports the same value an
  /// uninterrupted one does.
  Time p99_wait = 0;

  /// Signal number that triggered the drain; 0 for a natural end (source
  /// exhausted) or the drain_after_sim_time hook.
  int drain_cause = 0;
  bool drain_deadline_expired = false;
  Time final_sim_time = 0;

  std::size_t peak_queue_depth = 0;
  std::size_t peak_active_flows = 0;
  std::size_t peak_calendar = 0;
  /// Peak simultaneously-registered jobs in the engine stores — the O(active)
  /// compaction bound made observable (without compaction this equals the
  /// total ever admitted).
  std::size_t peak_live_jobs = 0;
  /// MemoryAccountant peak of the engine state stores (bytes); populated
  /// only when sample_every > 0.
  std::uint64_t peak_state_bytes = 0;
};

class Daemon {
 public:
  /// Validates the options (ConfigError on contradictions: no source, bad
  /// watermark ordering, checkpoint cadence without a path, ...).
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Fresh run: admit / step / maintain until the source is exhausted and
  /// the fabric drains, or a drain trigger fires. One-shot.
  [[nodiscard]] DaemonReport run();

  /// Resumes a run from a kServiceState snapshot written by an auto-
  /// checkpoint. The options must match the checkpointed run's (scheduler,
  /// fabric, source fingerprint, policy, watermarks, cadences) — mismatches
  /// are aggregated into one ConfigError. Continuation is byte-identical to
  /// the uninterrupted run, queued-but-unadmitted jobs included. One-shot.
  [[nodiscard]] DaemonReport recover(const std::string& snapshot_path);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gurita::service
