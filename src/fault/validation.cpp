#include "fault/validation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <sstream>
#include <string>

namespace gurita {

namespace {

std::string at(const char* array, std::size_t index) {
  std::ostringstream os;
  os << array << '[' << index << ']';
  return os.str();
}

}  // namespace

void validate_capacity_changes(const std::vector<CapacityChange>& changes,
                               std::size_t link_count) {
  std::vector<ConfigError::Issue> issues;
  for (std::size_t i = 0; i < changes.size(); ++i) {
    const CapacityChange& c = changes[i];
    const std::string where = at("disruptions", i);
    if (!std::isfinite(c.time) || c.time < 0) {
      std::ostringstream os;
      os << "time must be finite and >= 0, got " << c.time;
      issues.push_back({where, os.str()});
    }
    if (!std::isfinite(c.new_capacity) || c.new_capacity < 0) {
      std::ostringstream os;
      os << "new_capacity must be finite and >= 0, got " << c.new_capacity;
      issues.push_back({where, os.str()});
    }
    if (!c.link.valid() || c.link.value() >= link_count) {
      std::ostringstream os;
      os << "link " << c.link << " does not exist (fabric has " << link_count
         << " links)";
      issues.push_back({where, os.str()});
    }
  }
  if (!issues.empty())
    throw ConfigError("invalid disruption schedule", std::move(issues));
}

void validate_fault_plan(const FaultPlan& plan, int num_hosts,
                         std::size_t link_count) {
  std::vector<ConfigError::Issue> issues;

  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& e = plan.events[i];
    const std::string where = at("fault_plan.events", i);
    if (!std::isfinite(e.time) || e.time < 0) {
      std::ostringstream os;
      os << "time must be finite and >= 0, got " << e.time;
      issues.push_back({where, os.str()});
    }
    switch (e.kind) {
      case FaultKind::kHostDown:
      case FaultKind::kHostUp:
      case FaultKind::kStragglerStart:
      case FaultKind::kStragglerEnd:
        if (e.host < 0 || e.host >= num_hosts) {
          std::ostringstream os;
          os << "host " << e.host << " does not exist (fabric has "
             << num_hosts << " hosts)";
          issues.push_back({where, os.str()});
        }
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        if (!e.link.valid() || e.link.value() >= link_count) {
          std::ostringstream os;
          os << "link " << e.link << " does not exist (fabric has "
             << link_count << " links)";
          issues.push_back({where, os.str()});
        }
        break;
      case FaultKind::kSchedulerStateLoss:
        break;
    }
    if (e.kind == FaultKind::kStragglerStart &&
        (!std::isfinite(e.factor) || e.factor <= 0 || e.factor >= 1)) {
      std::ostringstream os;
      os << "straggler factor must lie in (0, 1), got " << e.factor;
      issues.push_back({where, os.str()});
    }
  }

  // Pairing discipline, checked in execution order. Only meaningful if the
  // per-event fields were sane, so skip when field errors exist (the indices
  // reported above are the actionable ones).
  if (issues.empty()) {
    std::vector<std::size_t> order(plan.events.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return plan.events[a].time < plan.events[b].time;
                     });
    // Tracks the down/up (or straggling/nominal) state per entity. Keys:
    // hosts and straggler windows by host index, links by link id.
    std::map<int, bool> host_down;
    std::map<int, bool> straggling;
    std::map<std::uint64_t, bool> link_down;
    for (std::size_t idx : order) {
      const FaultEvent& e = plan.events[idx];
      const std::string where = at("fault_plan.events", idx);
      switch (e.kind) {
        case FaultKind::kHostDown:
          if (host_down[e.host]) {
            std::ostringstream os;
            os << "host " << e.host << " is already down at t=" << e.time;
            issues.push_back({where, os.str()});
          }
          host_down[e.host] = true;
          break;
        case FaultKind::kHostUp:
          if (!host_down[e.host]) {
            std::ostringstream os;
            os << "host " << e.host << " is not down at t=" << e.time;
            issues.push_back({where, os.str()});
          }
          host_down[e.host] = false;
          break;
        case FaultKind::kLinkDown:
          if (link_down[e.link.value()]) {
            std::ostringstream os;
            os << "link " << e.link << " is already down at t=" << e.time;
            issues.push_back({where, os.str()});
          }
          link_down[e.link.value()] = true;
          break;
        case FaultKind::kLinkUp:
          if (!link_down[e.link.value()]) {
            std::ostringstream os;
            os << "link " << e.link << " is not down at t=" << e.time;
            issues.push_back({where, os.str()});
          }
          link_down[e.link.value()] = false;
          break;
        case FaultKind::kStragglerStart:
          if (straggling[e.host]) {
            std::ostringstream os;
            os << "host " << e.host << " is already straggling at t="
               << e.time;
            issues.push_back({where, os.str()});
          }
          straggling[e.host] = true;
          break;
        case FaultKind::kStragglerEnd:
          if (!straggling[e.host]) {
            std::ostringstream os;
            os << "host " << e.host << " is not straggling at t=" << e.time;
            issues.push_back({where, os.str()});
          }
          straggling[e.host] = false;
          break;
        case FaultKind::kSchedulerStateLoss:
          break;
      }
    }
  }

  const RetryPolicy& r = plan.retry;
  if (!std::isfinite(r.base_delay) || r.base_delay <= 0) {
    std::ostringstream os;
    os << "base_delay must be finite and > 0, got " << r.base_delay;
    issues.push_back({"fault_plan.retry", os.str()});
  }
  if (!std::isfinite(r.multiplier) || r.multiplier < 1) {
    std::ostringstream os;
    os << "multiplier must be finite and >= 1, got " << r.multiplier;
    issues.push_back({"fault_plan.retry", os.str()});
  }
  if (!std::isfinite(r.max_delay) || r.max_delay < 0) {
    std::ostringstream os;
    os << "max_delay must be finite and >= 0 (0 disables the cap), got "
       << r.max_delay;
    issues.push_back({"fault_plan.retry", os.str()});
  }
  if (!std::isfinite(r.jitter) || r.jitter < 0) {
    std::ostringstream os;
    os << "jitter must be finite and >= 0, got " << r.jitter;
    issues.push_back({"fault_plan.retry", os.str()});
  }
  if (r.max_attempts < 1) {
    std::ostringstream os;
    os << "max_attempts must be >= 1, got " << r.max_attempts;
    issues.push_back({"fault_plan.retry", os.str()});
  }

  if (!issues.empty())
    throw ConfigError("invalid fault plan", std::move(issues));
}

}  // namespace gurita
