// Deterministic fault-injection model (DESIGN.md §11).
//
// A FaultPlan is a seeded, pre-compiled list of timed fault events the
// engine executes alongside its regular calendar: host crash/recovery,
// link down/up, straggler slowdown windows and scheduler-state loss. The
// plan is plain data — generating it (fault/plan.h) is separate from
// executing it (flowsim/simulator.cpp), so the identical plan can be
// replayed under every scheduler of a comparison and across worker counts,
// keeping resilience results bit-identical (the determinism contract of
// DESIGN.md §9 extends to faults).
//
// Semantics implemented by the engine:
//  * kHostDown aborts every in-flight flow touching the host; the bytes in
//    flight are lost (the coflow's delivered-byte aggregates roll back).
//  * Aborted flows park until every blocking entity recovers, then re-enter
//    through RetryPolicy (fixed/exponential backoff, jitter drawn from the
//    plan's seed per (flow, attempt) — never from a shared stream, so retry
//    timing is independent of event interleaving).
//  * A flow that exhausts max_attempts fails its whole job: remaining flows
//    are cancelled and the job is marked failed instead of simulated
//    forever. The same happens when a needed recovery never comes.
//  * kStragglerStart caps the rates of flows touching the host at
//    factor × allocation until kStragglerEnd.
//  * kSchedulerStateLoss is delivered to the scheduler (on_fault): learned
//    priority state is dropped and live coflows re-enter the highest queue.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace gurita {

/// A scheduled change to one link's capacity (failure injection: degrade a
/// link mid-run, restore it later). A capacity of 0 models a hard failure;
/// note flows already routed across a dead link can never finish — the
/// engine then throws its stall guard, which is the honest outcome for a
/// fabric without re-routing. (For faults with retry semantics use
/// FaultEvent's kLinkDown/kLinkUp instead, which abort and re-admit flows.)
struct CapacityChange {
  Time time = 0;
  LinkId link;
  Rate new_capacity = 0;
};

/// Kind of one fault event. Down/start kinds are "faults" (delivered to
/// Scheduler::on_fault), up/end kinds are "recoveries" (on_recover).
enum class FaultKind : std::uint8_t {
  kHostDown = 0,            ///< host crashes; flows touching it abort
  kHostUp = 1,              ///< host rejoins; parked flows may retry
  kLinkDown = 2,            ///< link fails hard; flows crossing it abort
  kLinkUp = 3,              ///< link restored at its pre-fault capacity
  kStragglerStart = 4,      ///< host degrades: flow rates capped at factor
  kStragglerEnd = 5,        ///< straggler window ends
  kSchedulerStateLoss = 6,  ///< scheduler control state vanishes
};

inline constexpr int kNumFaultKinds = 7;

/// Printable name ("host_down", "straggler_start", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// True for the kinds delivered via Scheduler::on_recover (kHostUp,
/// kLinkUp, kStragglerEnd); false for the on_fault kinds.
[[nodiscard]] constexpr bool is_recovery(FaultKind kind) {
  return kind == FaultKind::kHostUp || kind == FaultKind::kLinkUp ||
         kind == FaultKind::kStragglerEnd;
}

/// One timed fault event. Which entity field is meaningful depends on the
/// kind: host events use `host`, link events use `link`, straggler events
/// use `host` + `factor`; kSchedulerStateLoss uses neither.
struct FaultEvent {
  Time time = 0;
  FaultKind kind = FaultKind::kHostDown;
  int host = -1;
  LinkId link;  ///< default-constructs to the invalid sentinel
  /// kStragglerStart: surviving fraction of the allocated rate, in (0, 1).
  double factor = 1.0;
};

/// How aborted flows re-enter after the blocking fault recovers.
struct RetryPolicy {
  enum class Backoff : std::uint8_t {
    kFixed = 0,        ///< every attempt waits base_delay
    kExponential = 1,  ///< base_delay × multiplier^(attempt-1), capped
  };
  Backoff backoff = Backoff::kExponential;
  Time base_delay = 2 * kMillisecond;
  double multiplier = 2.0;
  /// Upper bound on the deterministic part of the delay (0 = no cap).
  Time max_delay = 0.5;
  /// Jitter fraction: the final delay is d × (1 + jitter × u) with
  /// u ∈ [0, 1) drawn deterministically from (seed, stream, attempt).
  double jitter = 0.1;
  /// A flow aborted this many times fails its job instead of retrying.
  int max_attempts = 8;

  /// Backoff delay before retry number `attempt` (1-based; values < 1 are
  /// clamped to 1 — a flow parked before it ever transmitted waits one
  /// base delay). `seed` is the plan's seed, `stream` the flow id: the
  /// jitter depends only on these three values, never on shared RNG state.
  [[nodiscard]] Time delay(int attempt, std::uint64_t seed,
                           std::uint64_t stream) const;
};

/// A complete, executable fault schedule for one run.
struct FaultPlan {
  std::vector<FaultEvent> events;  ///< any order; the engine sorts by time
  RetryPolicy retry;
  std::uint64_t seed = 0;  ///< jitter stream seed (see RetryPolicy::delay)

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Structured setup-validation failure: aggregates every problem found in a
/// config (not just the first) so a caller can report them all. Derives
/// from std::logic_error — existing EXPECT_THROW(std::logic_error) call
/// sites keep working — and what() embeds every issue.
class ConfigError : public std::logic_error {
 public:
  struct Issue {
    std::string where;  ///< e.g. "disruptions[3]", "fault_plan.events[0]"
    std::string what;   ///< human-readable description of the problem
  };

  ConfigError(const std::string& context, std::vector<Issue> issues);

  [[nodiscard]] const std::vector<Issue>& issues() const { return issues_; }

 private:
  static std::string format(const std::string& context,
                            const std::vector<Issue>& issues);
  std::vector<Issue> issues_;
};

}  // namespace gurita
