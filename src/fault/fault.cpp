#include "fault/fault.h"

#include <sstream>

#include "common/rng.h"

namespace gurita {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHostDown: return "host_down";
    case FaultKind::kHostUp: return "host_up";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kStragglerStart: return "straggler_start";
    case FaultKind::kStragglerEnd: return "straggler_end";
    case FaultKind::kSchedulerStateLoss: return "scheduler_state_loss";
  }
  return "?";
}

Time RetryPolicy::delay(int attempt, std::uint64_t seed,
                        std::uint64_t stream) const {
  const int level = attempt < 1 ? 1 : attempt;
  Time d = base_delay;
  if (backoff == Backoff::kExponential) {
    for (int i = 1; i < level; ++i) {
      d *= multiplier;
      if (max_delay > 0 && d >= max_delay) break;
    }
  }
  if (max_delay > 0 && d > max_delay) d = max_delay;
  if (jitter > 0) {
    // Keyed jitter: one throwaway generator seeded from (seed, stream,
    // attempt). No shared stream state, so the delay of (flow f, attempt a)
    // is a pure function — independent of how many other flows retried
    // first, which is what keeps retry timing deterministic under any
    // fault interleaving.
    Rng rng(seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<std::uint64_t>(level) * 0xbf58476d1ce4e5b9ULL));
    d += d * jitter * rng.next_double();
  }
  return d;
}

std::string ConfigError::format(const std::string& context,
                                const std::vector<Issue>& issues) {
  std::ostringstream os;
  os << context << ": " << issues.size()
     << (issues.size() == 1 ? " issue" : " issues");
  for (const Issue& issue : issues)
    os << "\n  " << issue.where << ": " << issue.what;
  return os.str();
}

ConfigError::ConfigError(const std::string& context, std::vector<Issue> issues)
    : std::logic_error(format(context, issues)), issues_(std::move(issues)) {}

}  // namespace gurita
