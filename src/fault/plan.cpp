#include "fault/plan.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/rng.h"

namespace gurita {

namespace {

/// Injects one Poisson class of down/up pairs: arrivals with exponential
/// gaps at `rate`, each picking a uniform entity and an exponential outage.
/// An arrival hitting an entity still down from its previous outage is
/// skipped (validate_fault_plan rejects overlapping windows), so rate is a
/// slight overestimate of the realized count under heavy load — acceptable
/// and, crucially, deterministic.
template <typename MakePair>
void inject_pairs(Rng& rng, double rate, Time horizon,
                  std::uint64_t num_entities, Time mean_outage,
                  std::vector<FaultEvent>& events, MakePair make_pair) {
  if (rate <= 0 || num_entities == 0 || horizon <= 0) return;
  std::map<std::uint64_t, Time> down_until;
  Time t = 0;
  for (;;) {
    t += rng.exponential(1.0 / rate);
    if (t >= horizon) break;
    const std::uint64_t entity = rng.uniform_int(0, num_entities - 1);
    const Time outage = rng.exponential(mean_outage);
    auto it = down_until.find(entity);
    if (it != down_until.end() && t < it->second) continue;
    down_until[entity] = t + outage;
    make_pair(t, t + outage, entity, events);
  }
}

}  // namespace

FaultPlan generate_fault_plan(const FaultPlanConfig& config,
                              std::uint64_t seed, int num_hosts,
                              std::size_t link_count) {
  FaultPlan plan;
  plan.retry = config.retry;
  plan.seed = seed;

  // One independent stream per fault class, split in a fixed order: the
  // crash schedule is identical whether or not stragglers are enabled.
  Rng root(seed);
  Rng crash_rng = root.split();
  Rng flap_rng = root.split();
  Rng straggle_rng = root.split();
  Rng loss_rng = root.split();

  inject_pairs(crash_rng, config.host_crash_rate, config.horizon,
               static_cast<std::uint64_t>(num_hosts), config.mean_downtime,
               plan.events,
               [](Time down, Time up, std::uint64_t host,
                  std::vector<FaultEvent>& out) {
                 FaultEvent d;
                 d.time = down;
                 d.kind = FaultKind::kHostDown;
                 d.host = static_cast<int>(host);
                 out.push_back(d);
                 FaultEvent u = d;
                 u.time = up;
                 u.kind = FaultKind::kHostUp;
                 out.push_back(u);
               });

  inject_pairs(flap_rng, config.link_flap_rate, config.horizon, link_count,
               config.mean_downtime, plan.events,
               [](Time down, Time up, std::uint64_t link,
                  std::vector<FaultEvent>& out) {
                 FaultEvent d;
                 d.time = down;
                 d.kind = FaultKind::kLinkDown;
                 d.link = LinkId{link};
                 out.push_back(d);
                 FaultEvent u = d;
                 u.time = up;
                 u.kind = FaultKind::kLinkUp;
                 out.push_back(u);
               });

  const double factor = config.straggler_factor;
  inject_pairs(straggle_rng, config.straggler_rate, config.horizon,
               static_cast<std::uint64_t>(num_hosts), config.mean_straggle,
               plan.events,
               [factor](Time start, Time end, std::uint64_t host,
                        std::vector<FaultEvent>& out) {
                 FaultEvent s;
                 s.time = start;
                 s.kind = FaultKind::kStragglerStart;
                 s.host = static_cast<int>(host);
                 s.factor = factor;
                 out.push_back(s);
                 FaultEvent e = s;
                 e.time = end;
                 e.kind = FaultKind::kStragglerEnd;
                 e.factor = 1.0;
                 out.push_back(e);
               });

  if (config.state_loss_rate > 0 && config.horizon > 0) {
    Time t = 0;
    for (;;) {
      t += loss_rng.exponential(1.0 / config.state_loss_rate);
      if (t >= config.horizon) break;
      FaultEvent e;
      e.time = t;
      e.kind = FaultKind::kSchedulerStateLoss;
      plan.events.push_back(e);
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return plan;
}

}  // namespace gurita
