// Seeded random fault-plan generation.
//
// generate_fault_plan() compiles a FaultPlanConfig (per-class event rates
// over a time horizon) into a concrete FaultPlan, deterministically from a
// seed: each fault class draws from its own RNG stream split off the root
// seed, so adding straggler events never perturbs where host crashes land.
// The same (config, seed, fabric shape) always yields the identical plan —
// the resilience benchmarks rely on this to replay one plan under every
// scheduler and across worker counts.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fault/fault.h"

namespace gurita {

/// Rates are expected event counts per simulated second across the whole
/// fabric (a Poisson process per class; gaps drawn exponentially). A rate
/// of 0 disables the class entirely.
struct FaultPlanConfig {
  double host_crash_rate = 0;  ///< host down/up pairs per second
  double link_flap_rate = 0;   ///< link down/up pairs per second
  double straggler_rate = 0;   ///< straggler windows per second
  double state_loss_rate = 0;  ///< scheduler-state-loss events per second
  Time horizon = 1.0;          ///< faults are injected in [0, horizon)
  Time mean_downtime = 50 * kMillisecond;  ///< mean crash/flap outage
  Time mean_straggle = 100 * kMillisecond;  ///< mean straggler window
  double straggler_factor = 0.25;  ///< surviving rate fraction while slow
  RetryPolicy retry;
};

/// Builds the concrete plan. Events on an entity never overlap (a crash
/// scheduled while the host is still down from the previous crash is
/// skipped), every down is paired with an up, and the result is sorted by
/// time with plan.seed = seed. Pure function of its arguments.
[[nodiscard]] FaultPlan generate_fault_plan(const FaultPlanConfig& config,
                                            std::uint64_t seed, int num_hosts,
                                            std::size_t link_count);

}  // namespace gurita
