// Setup-time validation for disruption schedules and fault plans.
//
// Both validators aggregate every problem they find into one ConfigError
// instead of throwing on the first — a mis-generated plan typically has the
// same mistake repeated, and seeing all instances at once beats a
// fix-one-rerun loop. Called by the Simulator constructor so a bad config
// fails before any event executes (never mid-run, never silently).
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault.h"

namespace gurita {

/// Validates a CapacityChange schedule against a fabric with `link_count`
/// links (valid ids are 0 .. link_count-1). Rejects non-finite or negative
/// times, negative capacities and unknown links. Throws ConfigError listing
/// every offending entry.
void validate_capacity_changes(const std::vector<CapacityChange>& changes,
                               std::size_t link_count);

/// Validates a fault plan against a fabric with `num_hosts` hosts and
/// `link_count` links. Beyond per-event field checks (finite time >= 0,
/// host/link in range, straggler factor in (0, 1)) this verifies the
/// down/up pairing discipline per entity in time order: a second down while
/// already down, an up while already up, or an end-without-start are all
/// errors. A trailing down with no recovery is allowed — it models a
/// permanent failure (affected jobs fail via retry exhaustion or stranding).
/// Also sanity-checks the retry policy (base_delay > 0, multiplier >= 1,
/// jitter >= 0, max_attempts >= 1). Throws ConfigError listing every issue.
void validate_fault_plan(const FaultPlan& plan, int num_hosts,
                         std::size_t link_count);

}  // namespace gurita
