// Static description of a single flow inside a coflow.
#pragma once

#include "common/units.h"

namespace gurita {

/// One sender → receiver transfer. Host indices refer to the fabric's host
/// numbering (FatTree::host).
struct FlowSpec {
  int src_host = 0;
  int dst_host = 0;
  Bytes size = 0;
};

}  // namespace gurita
