#include "coflow/job.h"

#include <algorithm>

#include "common/check.h"

namespace gurita {

std::vector<int> topological_order(const JobSpec& job) {
  const int n = static_cast<int>(job.coflows.size());
  GURITA_CHECK_MSG(static_cast<int>(job.deps.size()) == n,
                   "deps must be sized to coflows");
  // Kahn's algorithm over the deps relation.
  std::vector<int> remaining_deps(n, 0);
  std::vector<std::vector<int>> dependents(n);
  for (int i = 0; i < n; ++i) {
    remaining_deps[i] = static_cast<int>(job.deps[i].size());
    for (int d : job.deps[i]) {
      GURITA_CHECK_MSG(d >= 0 && d < n, "dependency index out of range");
      dependents[d].push_back(i);
    }
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (remaining_deps[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const int u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (int v : dependents[u])
      if (--remaining_deps[v] == 0) ready.push_back(v);
  }
  GURITA_CHECK_MSG(static_cast<int>(order.size()) == n,
                   "coflow dependency graph has a cycle");
  return order;
}

void validate(const JobSpec& job, int num_hosts) {
  GURITA_CHECK_MSG(!job.coflows.empty(), "job has no coflows");
  GURITA_CHECK_MSG(job.deps.size() == job.coflows.size(),
                   "deps must be sized to coflows");
  GURITA_CHECK_MSG(job.arrival_time >= 0, "negative arrival time");
  GURITA_CHECK_MSG(!job.has_deadline() || job.deadline > job.arrival_time,
                   "deadline must fall after arrival");
  const int n = static_cast<int>(job.coflows.size());
  for (int i = 0; i < n; ++i) {
    for (int d : job.deps[i]) {
      GURITA_CHECK_MSG(d >= 0 && d < n, "dependency index out of range");
      GURITA_CHECK_MSG(d != i, "coflow depends on itself");
    }
    GURITA_CHECK_MSG(!job.coflows[i].flows.empty(), "coflow has no flows");
    for (const FlowSpec& f : job.coflows[i].flows) {
      GURITA_CHECK_MSG(f.size > 0, "flow size must be positive");
      GURITA_CHECK_MSG(f.src_host >= 0 && f.src_host < num_hosts,
                       "flow src host out of range");
      GURITA_CHECK_MSG(f.dst_host >= 0 && f.dst_host < num_hosts,
                       "flow dst host out of range");
      GURITA_CHECK_MSG(f.src_host != f.dst_host,
                       "flow src and dst are the same host");
    }
  }
  (void)topological_order(job);  // throws on cycles
}

std::vector<int> stages_of(const JobSpec& job) {
  const std::vector<int> order = topological_order(job);
  std::vector<int> stage(job.coflows.size(), 1);
  for (int u : order) {
    for (int d : job.deps[u]) stage[u] = std::max(stage[u], stage[d] + 1);
  }
  return stage;
}

int stage_count(const JobSpec& job) {
  int m = 0;
  for (int s : stages_of(job)) m = std::max(m, s);
  return m;
}

}  // namespace gurita
