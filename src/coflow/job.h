// Static description of a multi-stage job: a DAG of coflows.
//
// Vertices are coflows; a directed dependency `u -> v` means v's coflow can
// start only after u's coflow completes (constraint (1.a) of the paper).
// We store, per coflow, the list of coflows it *depends on* (`deps`), i.e.
// its children in the paper's parent/child vocabulary.
//
// Stages (§II "Computation stages"): stage(c) = 1 for coflows with no
// dependencies (leaves — the first flows processed, observation O1), else
// 1 + max(stage of dependencies). Different coflows of one job can be in
// flight in different stages simultaneously when their dependency chains are
// independent (parallel chains).
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "coflow/coflow.h"

namespace gurita {

struct JobSpec {
  Time arrival_time = 0;
  /// Optional completion deadline (absolute time). 0 = no deadline.
  /// Johnson's fourth rule — avoid tardiness by prioritizing the smallest
  /// slack — only applies to jobs that carry one.
  Time deadline = 0;
  std::vector<CoflowSpec> coflows;
  /// deps[i] = local indices of the coflows that must complete before
  /// coflow i may start. Empty = leaf (released on job arrival).
  std::vector<std::vector<int>> deps;

  [[nodiscard]] bool has_deadline() const { return deadline > 0; }

  [[nodiscard]] std::size_t coflow_count() const { return coflows.size(); }

  [[nodiscard]] Bytes total_bytes() const {
    Bytes t = 0;
    for (const CoflowSpec& c : coflows) t += c.total_bytes();
    return t;
  }
};

/// Structural sanity: deps sized to coflows, indices in range, no self-dep,
/// DAG (acyclic), each coflow has >= 1 flow, every flow size > 0, and flow
/// endpoints within [0, num_hosts) with src != dst.
/// Throws std::logic_error describing the first violation found.
void validate(const JobSpec& job, int num_hosts);

/// 1-based stage of every coflow (leaves = 1). Requires a valid DAG.
[[nodiscard]] std::vector<int> stages_of(const JobSpec& job);

/// Total number of stages (max over stages_of). Requires a valid DAG.
[[nodiscard]] int stage_count(const JobSpec& job);

/// Topological order of coflow indices (dependencies before dependents).
/// Throws std::logic_error if the dependency graph has a cycle.
[[nodiscard]] std::vector<int> topological_order(const JobSpec& job);

}  // namespace gurita
