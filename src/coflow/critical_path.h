// Critical-path analysis of a job's coflow DAG (§III.A).
//
// The paper decomposes JCT as T_j = max_{Φ ∈ Φ(DAG_j)} t(Φ): the longest
// leaf→root path where each vertex contributes its coflow completion time.
// Gurita's rule 4 prioritizes coflows on this path. Here we compute the
// weighted longest path by topological DP and mark every coflow that lies
// on some maximum-length path.
#pragma once

#include <vector>

#include "common/units.h"
#include "coflow/job.h"

namespace gurita {

struct CriticalPathInfo {
  /// Longest-path length from any leaf through coflow i (inclusive of i).
  std::vector<double> longest_to;
  /// Longest-path length from coflow i (exclusive) down to any root.
  std::vector<double> longest_from;
  /// Length of the critical path: max over roots of longest_to.
  double length = 0;
  /// on_critical[i]: coflow i lies on some maximum-length leaf→root path.
  std::vector<bool> on_critical;
};

/// Computes the critical path with per-coflow costs `cost` (one entry per
/// coflow, each >= 0). Requires a valid DAG.
[[nodiscard]] CriticalPathInfo compute_critical_path(
    const JobSpec& job, const std::vector<double>& cost);

/// Paper's clairvoyant cost estimate: CCT_c ≈ ℓ_max(c) / r, i.e. the largest
/// flow transmitted at rate `r` bounds the coflow's completion time.
[[nodiscard]] std::vector<double> estimated_cct_costs(const JobSpec& job,
                                                      Rate rate);

/// Lower bound on the job's completion time at full line rate `rate`:
/// the critical-path length with CCT_c = ℓ_max(c) / rate. No scheduler can
/// beat this bound; property tests verify every scheduler respects it.
[[nodiscard]] Time jct_lower_bound(const JobSpec& job, Rate rate);

}  // namespace gurita
