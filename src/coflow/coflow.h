// Static description of a coflow: the collection of flows carrying data
// between two successive computation stages of a job (Chowdhury & Stoica,
// "Coflow", HotNets 2012). A coflow completes when all of its flows complete.
//
// The paper identifies three dimensions of a coflow in the multi-stage
// setting (§III.C): horizontal (width — number of flows), vertical (size of
// the largest flow), and depth (position in the job's stage pipeline). The
// first two are properties of this struct; depth belongs to the owning job.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "coflow/flow.h"

namespace gurita {

struct CoflowSpec {
  std::vector<FlowSpec> flows;

  /// Horizontal dimension: number of flows.
  [[nodiscard]] std::size_t width() const { return flows.size(); }

  /// Vertical dimension: size of the largest flow (bytes).
  [[nodiscard]] Bytes max_flow_size() const {
    Bytes m = 0;
    for (const FlowSpec& f : flows) m = f.size > m ? f.size : m;
    return m;
  }

  [[nodiscard]] Bytes total_bytes() const {
    Bytes t = 0;
    for (const FlowSpec& f : flows) t += f.size;
    return t;
  }

  [[nodiscard]] Bytes avg_flow_size() const {
    return flows.empty() ? 0.0
                         : total_bytes() / static_cast<double>(flows.size());
  }
};

}  // namespace gurita
