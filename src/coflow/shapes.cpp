#include "coflow/shapes.h"

#include <algorithm>

#include "common/check.h"

namespace gurita::shapes {

Deps single() { return Deps(1); }

Deps chain(int length) {
  GURITA_CHECK_MSG(length >= 1, "chain length must be >= 1");
  Deps deps(length);
  for (int i = 1; i < length; ++i) deps[i] = {i - 1};
  return deps;
}

Deps parallel_chains(int count, int length) {
  GURITA_CHECK_MSG(count >= 1 && length >= 1, "bad parallel_chains args");
  Deps deps(static_cast<std::size_t>(count) * length);
  for (int c = 0; c < count; ++c)
    for (int i = 1; i < length; ++i)
      deps[c * length + i] = {c * length + i - 1};
  return deps;
}

Deps tree(int depth, int fanout) {
  GURITA_CHECK_MSG(depth >= 1 && fanout >= 1, "bad tree args");
  // Build level by level, leaves (deepest level) first. Level d (0-based
  // from the root) has fanout^d nodes.
  std::vector<int> level_size(depth);
  int sz = 1;
  for (int d = 0; d < depth; ++d) {
    level_size[d] = sz;
    sz *= fanout;
  }
  // Assign indices: deepest level first.
  int total = 0;
  for (int d = 0; d < depth; ++d) total += level_size[d];
  Deps deps(total);
  // first_index[d] = index of the first node of level d (root level = 0).
  std::vector<int> first_index(depth);
  int cursor = 0;
  for (int d = depth - 1; d >= 0; --d) {
    first_index[d] = cursor;
    cursor += level_size[d];
  }
  for (int d = 0; d + 1 < depth; ++d) {
    for (int i = 0; i < level_size[d]; ++i) {
      const int parent = first_index[d] + i;
      for (int f = 0; f < fanout; ++f)
        deps[parent].push_back(first_index[d + 1] + i * fanout + f);
    }
  }
  return deps;
}

Deps inverted_v(int width) {
  GURITA_CHECK_MSG(width >= 1, "inverted_v width must be >= 1");
  Deps deps(width + 1);
  for (int i = 0; i < width; ++i) deps[width].push_back(i);
  return deps;
}

Deps v_shape(int width) {
  GURITA_CHECK_MSG(width >= 1, "v_shape width must be >= 1");
  Deps deps(width + 1);
  for (int i = 1; i <= width; ++i) deps[i] = {0};
  return deps;
}

Deps w_shape() {
  Deps deps(5);
  deps[3] = {0, 1};  // root0 <- leaf0, leaf1
  deps[4] = {1, 2};  // root1 <- leaf1, leaf2
  return deps;
}

Deps multi_root(int roots, int shared) {
  GURITA_CHECK_MSG(roots >= 1 && shared >= 1, "bad multi_root args");
  Deps deps(shared + roots);
  for (int r = 0; r < roots; ++r)
    for (int s = 0; s < shared; ++s) deps[shared + r].push_back(s);
  return deps;
}

Deps random_dag(Rng& rng, int n, double edge_prob) {
  GURITA_CHECK_MSG(n >= 1, "random_dag needs n >= 1");
  GURITA_CHECK_MSG(edge_prob >= 0.0 && edge_prob <= 1.0,
                   "edge_prob out of [0,1]");
  Deps deps(n);
  for (int j = 1; j < n; ++j)
    for (int i = 0; i < j; ++i)
      if (rng.next_double() < edge_prob) deps[j].push_back(i);
  return deps;
}

int depth_of(const Deps& deps) {
  const int n = static_cast<int>(deps.size());
  std::vector<int> depth(n, 0);
  // deps indices can be in any order; iterate until fixpoint via
  // repeated relaxation bounded by n passes (structures here are small).
  bool changed = true;
  int guard = 0;
  while (changed) {
    GURITA_CHECK_MSG(++guard <= n + 1, "cycle in deps");
    changed = false;
    for (int i = 0; i < n; ++i) {
      for (int d : deps[i]) {
        if (depth[i] < depth[d] + 1) {
          depth[i] = depth[d] + 1;
          changed = true;
        }
      }
    }
  }
  return *std::max_element(depth.begin(), depth.end()) + 1;
}

}  // namespace gurita::shapes
