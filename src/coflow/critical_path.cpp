#include "coflow/critical_path.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gurita {

namespace {
// Two path lengths closer than this (relatively) are considered equal when
// deciding critical-path membership.
constexpr double kRelEps = 1e-9;

bool approx_eq(double a, double b) {
  return std::abs(a - b) <= kRelEps * std::max({1.0, std::abs(a), std::abs(b)});
}
}  // namespace

CriticalPathInfo compute_critical_path(const JobSpec& job,
                                       const std::vector<double>& cost) {
  const std::size_t n = job.coflows.size();
  GURITA_CHECK_MSG(cost.size() == n, "cost must be sized to coflows");
  for (double c : cost) GURITA_CHECK_MSG(c >= 0, "negative coflow cost");

  const std::vector<int> order = topological_order(job);

  CriticalPathInfo info;
  info.longest_to.assign(n, 0.0);
  info.longest_from.assign(n, 0.0);
  info.on_critical.assign(n, false);

  // Forward pass: longest path from a leaf up to and including i.
  for (int u : order) {
    double best = 0.0;
    for (int d : job.deps[u]) best = std::max(best, info.longest_to[d]);
    info.longest_to[u] = best + cost[u];
  }

  // Dependents adjacency for the backward pass.
  std::vector<std::vector<int>> dependents(n);
  for (std::size_t i = 0; i < n; ++i)
    for (int d : job.deps[i]) dependents[d].push_back(static_cast<int>(i));

  // Backward pass (reverse topological): longest continuation below i.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    double best = 0.0;
    for (int v : dependents[u])
      best = std::max(best, info.longest_from[v] + cost[v]);
    info.longest_from[u] = best;
  }

  for (std::size_t i = 0; i < n; ++i)
    info.length = std::max(info.length, info.longest_to[i]);

  for (std::size_t i = 0; i < n; ++i)
    info.on_critical[i] =
        approx_eq(info.longest_to[i] + info.longest_from[i], info.length);

  return info;
}

std::vector<double> estimated_cct_costs(const JobSpec& job, Rate rate) {
  GURITA_CHECK_MSG(rate > 0, "rate must be positive");
  std::vector<double> cost;
  cost.reserve(job.coflows.size());
  for (const CoflowSpec& c : job.coflows)
    cost.push_back(c.max_flow_size() / rate);
  return cost;
}

Time jct_lower_bound(const JobSpec& job, Rate rate) {
  return compute_critical_path(job, estimated_cct_costs(job, rate)).length;
}

}  // namespace gurita
