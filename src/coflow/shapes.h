// Job dependency-structure templates.
//
// The Microsoft production study cited by the paper [28, Graphene OSDI'16]
// reports that job DAGs come as chains, trees, "W" shapes, inverted-"V"
// shapes, parallel chains and multi-rooted composites, with an average
// depth of five stages. These builders produce the `deps` relation for a
// JobSpec; flow contents are attached separately by the workload generator.
//
// Convention: deps[i] lists the coflows that must finish before coflow i
// starts. Indices are assigned so leaves come first (but callers must not
// rely on that — only on the declared structure).
#pragma once

#include <vector>

#include "common/rng.h"

namespace gurita::shapes {

using Deps = std::vector<std::vector<int>>;

/// A single coflow, no dependencies (single-stage job).
[[nodiscard]] Deps single();

/// Linear chain of `length` coflows: 0 <- 1 <- ... <- length-1.
[[nodiscard]] Deps chain(int length);

/// `count` independent chains of `length` within one job (parallel chains —
/// stages can overlap across chains, §I "special cases").
[[nodiscard]] Deps parallel_chains(int count, int length);

/// Complete `fanout`-ary in-tree of `depth` levels; the root is the final
/// stage and every internal node depends on its `fanout` children.
/// depth = 1 yields a single coflow.
[[nodiscard]] Deps tree(int depth, int fanout);

/// Inverted "V": `width` independent leaves all feeding one root.
[[nodiscard]] Deps inverted_v(int width);

/// "V": one leaf feeding `width` independent roots (multi-output).
[[nodiscard]] Deps v_shape(int width);

/// "W": two roots over three leaves with the middle leaf shared
/// (root0 <- {leaf0, leaf1}, root1 <- {leaf1, leaf2}).
[[nodiscard]] Deps w_shape();

/// Multi-rooted composite: `roots` outputs each depending on a shared pool
/// of `shared` leaves (models "complex shapes with multiple outputs").
[[nodiscard]] Deps multi_root(int roots, int shared);

/// Random DAG over `n` coflows: an edge i -> j (j depends on i) is added
/// with probability `edge_prob` for i < j. Always acyclic. For property
/// tests.
[[nodiscard]] Deps random_dag(Rng& rng, int n, double edge_prob);

/// Number of stages implied by a deps relation (longest chain + 1).
[[nodiscard]] int depth_of(const Deps& deps);

}  // namespace gurita::shapes
